#include "dockmine/synth/popularity.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "dockmine/stats/distributions.h"

namespace dockmine::synth {

namespace {
constexpr std::array<OfficialRepo, 5> kTop = {{
    {"nginx", 650000000ULL},
    {"google/cadvisor", 434000000ULL},
    {"redis", 264000000ULL},
    {"gliderlabs/registrator", 212000000ULL},
    {"ubuntu", 28000000ULL},
}};
}  // namespace

std::uint64_t PopularityModel::sample(util::Rng& rng) const {
  const double u = rng.uniform01();
  double pulls;
  if (u < cal_.pulls_low_weight) {
    const stats::LogNormal low(std::log(cal_.pulls_low_median),
                               cal_.pulls_low_sigma);
    pulls = low.sample(rng);
    // The 0-2 pull bin is real: allow rounding to zero.
    pulls = std::max(0.0, pulls - 1.0);
  } else if (u < cal_.pulls_low_weight + cal_.pulls_mid_weight) {
    const stats::LogNormal mid(std::log(cal_.pulls_mid_median),
                               cal_.pulls_mid_sigma);
    pulls = mid.sample(rng);
  } else {
    const stats::Pareto tail(cal_.pulls_tail_xm, cal_.pulls_tail_alpha);
    pulls = tail.sample(rng);
  }
  pulls = std::min(pulls, cal_.pulls_max);
  return static_cast<std::uint64_t>(std::llround(pulls));
}

std::span<const OfficialRepo> PopularityModel::top_repositories() {
  return {kTop.data(), kTop.size()};
}

}  // namespace dockmine::synth
