// Bytes mode: turn model layers into real gzipped tar archives and push a
// complete, pullable registry.
//
// Everything the metadata mode describes statistically exists here as real
// bytes: tar members with directory skeletons honoring the layer's
// dir-count/depth spec, per-file content stamped with the right magic
// numbers and compressibility, gzip blobs, content-addressed digests, and
// schema-v2 manifests. The analyzer can then run end-to-end exactly as the
// paper's did: pull, gunzip, untar, profile.
#pragma once

#include <string>
#include <unordered_map>
#include <utility>

#include "dockmine/registry/service.h"
#include "dockmine/synth/generator.h"
#include "dockmine/util/error.h"

namespace dockmine::synth {

class Materializer {
 public:
  explicit Materializer(const HubModel& hub, int gzip_level = 6)
      : hub_(hub), gzip_level_(gzip_level) {}

  /// Layer-id -> (blob digest, blob size) memo shared across pushes so each
  /// unique layer is gzipped exactly once. The temporal epoch driver keeps
  /// one of these alive across epochs: unchanged layer ids reuse their
  /// epoch-0 digests, which is what makes incremental re-analysis possible.
  using BlobCache =
      std::unordered_map<LayerId, std::pair<digest::Digest, std::uint64_t>>;

  /// Uncompressed tar bytes of one layer (deterministic).
  std::string layer_tar(const LayerSpec& spec) const;

  /// Complete gzip blob of one layer.
  util::Result<std::string> layer_blob(const LayerSpec& spec) const;

  /// Push every repository, manifest, config, and unique layer blob of the
  /// snapshot into `service`. Returns the number of manifests pushed.
  util::Result<std::uint64_t> populate(registry::Service& service) const;

  /// Push a full version history (see synth/versions.h): every tag chain
  /// becomes pullable ("repo:v1", ..., "repo:latest"). Layers shared with
  /// `latest` are reused; churned layers are materialized fresh. Returns
  /// manifests pushed.
  util::Result<std::uint64_t> populate_versions(
      registry::Service& service, const class VersionModel& versions) const;

  /// Push one image under `repository:tag`, materializing any layer id not
  /// yet in `blob_cache` and reusing cached digests for the rest. Pushing
  /// an existing tag repoints it — exactly how a re-push moves `latest`.
  /// This is the temporal epoch driver's surface (dockmine::temporal);
  /// populate/populate_versions are built on the same call.
  util::Result<std::uint64_t> push_tagged_image(registry::Service& service,
                                                const std::string& repository,
                                                const std::string& tag,
                                                const ImageSpec& image,
                                                BlobCache& blob_cache) const {
    return push_image(service, repository, tag, image, blob_cache);
  }

 private:
  util::Result<std::uint64_t> push_image(registry::Service& service,
                                         const std::string& repository,
                                         const std::string& tag,
                                         const ImageSpec& image,
                                         BlobCache& blob_cache) const;

  const HubModel& hub_;
  int gzip_level_;
};

}  // namespace dockmine::synth
