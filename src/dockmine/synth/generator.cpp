#include "dockmine/synth/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace dockmine::synth {

namespace {

// Official repository names (beyond the pinned top-5): a plausible roster so
// generated snapshots read like Docker Hub. ~200 officials at full scale.
constexpr std::string_view kOfficialNames[] = {
    "alpine",     "debian",    "busybox",   "mysql",      "postgres",
    "mongo",      "node",      "python",    "golang",     "php",
    "ruby",       "java",      "memcached", "rabbitmq",   "httpd",
    "tomcat",     "jenkins",   "wordpress", "elasticsearch", "cassandra",
    "mariadb",    "consul",    "haproxy",   "kibana",     "logstash",
    "traefik",    "vault",     "influxdb",  "telegraf",   "ghost",
    "owncloud",   "nextcloud", "drupal",    "joomla",     "sonarqube",
    "nats",       "zookeeper", "kafka",     "solr",       "couchdb",
};

constexpr std::string_view kUserWords[] = {
    "dev",  "lab",   "team",  "cloud", "data", "sys",  "net",  "ops",
    "soft", "code",  "micro", "hub",   "apps", "stack", "core", "byte",
};
constexpr std::string_view kAppWords[] = {
    "api",     "web",     "app",      "service", "worker", "proxy",
    "backend", "frontend", "gateway", "pipeline", "bot",   "agent",
    "builder", "runner",  "monitor",  "cache",    "queue", "store",
};

std::string make_user_repo_name(util::Rng& rng, std::uint64_t index) {
  const std::string_view u1 = kUserWords[rng.uniform(std::size(kUserWords))];
  const std::string_view a1 = kAppWords[rng.uniform(std::size(kAppWords))];
  // The numeric suffix guarantees global uniqueness.
  return std::string(u1) + std::to_string(index % 9973) + "/" +
         std::string(a1) + "-" + std::to_string(index);
}

}  // namespace

double expected_mean_files_per_layer(const Calibration& cal) {
  const double mean_small =
      cal.files_small_median *
      std::exp(cal.files_small_sigma * cal.files_small_sigma / 2.0);
  const double mean_big =
      cal.files_big_median *
      std::exp(cal.files_big_sigma * cal.files_big_sigma / 2.0);
  const double light = cal.light_single_prob +
                       (1.0 - cal.light_empty_prob - cal.light_single_prob) *
                           mean_small;
  const double heavy = cal.heavy_single_prob +
                       (1.0 - cal.heavy_empty_prob - cal.heavy_single_prob) *
                           mean_big;
  return (1.0 - cal.image_heavy_prob) * light + cal.image_heavy_prob * heavy;
}

HubModel::HubModel(Calibration cal, Scale scale)
    : cal_(cal), scale_(scale) {
  util::Rng rng(util::splitmix64(scale_.seed));

  const std::uint64_t n_repos = std::max<std::uint64_t>(8, scale_.repositories);

  // Mean layers per image under the Fig. 10 model; used (with mean files
  // per layer) to presize the file-content pools.
  const double mean_layers =
      cal_.layers_single_prob +
      (1.0 - cal_.layers_single_prob) * cal_.layers_median *
          std::exp(cal_.layers_sigma * cal_.layers_sigma / 2.0);
  const double expected_images =
      static_cast<double>(n_repos) * (1.0 - Calibration::kDownloadFailureRate);
  const double expected_instances = expected_images * mean_layers *
                                    expected_mean_files_per_layer(cal_) * 0.85;
  files_ = std::make_unique<FileModel>(
      cal_, static_cast<std::uint64_t>(expected_instances), scale_.seed);
  layers_ = std::make_unique<LayerModel>(cal_, *files_, scale_.seed);
  lineage_ = std::make_unique<LineageModel>(cal_, n_repos, scale_.seed);

  PopularityModel popularity(cal_);

  // ---- repositories ----
  repos_.reserve(n_repos);
  const auto top = PopularityModel::top_repositories();
  const std::uint64_t n_official = std::max<std::uint64_t>(
      top.size(),
      static_cast<std::uint64_t>(200.0 * static_cast<double>(n_repos) /
                                 static_cast<double>(Calibration::kFullRepositories)));

  for (std::uint64_t i = 0; i < n_repos; ++i) {
    RepoSpec repo;
    if (i < top.size()) {
      repo.name = std::string(top[i].name);
      repo.official = top[i].name.find('/') == std::string_view::npos;
      repo.pull_count = top[i].pulls;
    } else if (i < n_official && (i - top.size()) < std::size(kOfficialNames)) {
      repo.name = std::string(kOfficialNames[i - top.size()]);
      repo.official = true;
      // Officials are popular: boost an ordinary draw.
      repo.pull_count = popularity.sample(rng) * 50000 + 100000;
    } else {
      repo.name = make_user_repo_name(rng, i);
      repo.pull_count = popularity.sample(rng);
    }

    // Failure classes (§III-B): 13% of the 23.9% failures need auth, 87%
    // lack a `latest` tag. Officials always resolve.
    if (!repo.official && i >= top.size()) {
      const double p_auth =
          Calibration::kDownloadFailureRate * Calibration::kFailAuthFraction;
      const double p_no_latest = Calibration::kDownloadFailureRate *
                                 Calibration::kFailNoLatestFraction;
      const double u = rng.uniform01();
      if (u < p_auth) {
        repo.requires_auth = true;
      } else if (u < p_auth + p_no_latest) {
        repo.has_latest = false;
      }
    }
    repos_.push_back(std::move(repo));
  }

  // ---- images (one `latest` image per repo that has the tag) ----
  std::unordered_set<LayerId> seen_layers;
  images_.reserve(repos_.size());
  for (std::uint64_t i = 0; i < repos_.size(); ++i) {
    RepoSpec& repo = repos_[i];
    if (!repo.has_latest) continue;
    ImageSpec image =
        lineage_->compose(static_cast<std::uint32_t>(i), /*image_index=*/i);
    repo.image_index = static_cast<std::int64_t>(images_.size());
    if (!repo.requires_auth) {
      ++downloadable_;
      // The analysis dataset is what the downloader retrieved: layers of
      // auth-gated images never reach it (paper: 13% of failures).
      for (LayerId id : image.layers) {
        if (seen_layers.insert(id).second) unique_layers_.push_back(id);
      }
    }
    images_.push_back(std::move(image));
  }
}

}  // namespace dockmine::synth
