#include "dockmine/synth/versions.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace dockmine::synth {

std::vector<TaggedImage> VersionModel::versions_for(
    std::size_t repo_index) const {
  std::vector<TaggedImage> chain;
  const RepoSpec& repo = hub_.repositories().at(repo_index);
  if (repo.image_index < 0) return chain;
  const std::uint64_t image_index = static_cast<std::uint64_t>(repo.image_index);
  const ImageSpec& latest = hub_.images()[image_index];

  // Deterministic historical tag count (geometric with the configured mean).
  std::uint64_t s = hub_.scale().seed ^ (repo_index * 0x9ddfea08eb382d69ULL);
  util::Rng rng(util::splitmix64(s));
  const double p = 1.0 / (1.0 + std::max(0.0, options_.extra_tags_mean));
  std::uint32_t extra = 0;
  while (extra < options_.max_tags - 1 && !rng.chance(p)) ++extra;

  // Version k (k = 1 oldest) shares `latest`'s stack except its topmost
  // `churn` layers, which are replaced by version-specific rewrites. Older
  // versions churn the same positions with different layer ids — exactly
  // how repeated image rebuilds behave.
  for (std::uint32_t version = 1; version <= extra; ++version) {
    TaggedImage tagged;
    tagged.tag = "v" + std::to_string(version);
    tagged.image.repo_index = latest.repo_index;
    const std::size_t total = latest.layers.size();
    const std::size_t churn =
        std::min<std::size_t>(options_.churn_layers, total);
    const std::size_t keep = total - churn;
    tagged.image.layers.assign(latest.layers.begin(),
                               latest.layers.begin() + keep);
    for (std::size_t k = 0; k < churn; ++k) {
      tagged.image.layers.push_back(versioned_layer_id(
          image_index, version, static_cast<std::uint32_t>(k)));
    }
    chain.push_back(std::move(tagged));
  }
  chain.push_back(TaggedImage{"latest", latest});
  return chain;
}

VersionModel::Stats VersionModel::analyze() const {
  Stats stats;
  std::unordered_map<LayerId, std::uint64_t> cls_of;  // distinct layers
  for (std::size_t repo = 0; repo < hub_.repositories().size(); ++repo) {
    const auto chain = versions_for(repo);
    if (chain.empty()) continue;
    ++stats.repositories;
    for (const TaggedImage& tagged : chain) {
      ++stats.tags;
      for (LayerId id : tagged.image.layers) {
        ++stats.logical_layer_refs;
        auto it = cls_of.find(id);
        if (it == cls_of.end()) {
          // Versioned layers behave like app layers of their image.
          const LayerKind kind = (id >> 62) == 3
                                     ? LayerKind::kApp
                                     : LineageModel::kind_of(id);
          const LayerSpec spec = hub_.layers().make_spec(id, kind);
          const LayerSizes sizes = hub_.layers().sizes(spec);
          it = cls_of.emplace(id, sizes.cls).first;
          stats.physical_bytes += sizes.cls;
        }
        stats.logical_bytes += it->second;
      }
    }
  }
  stats.distinct_layers = cls_of.size();
  return stats;
}

}  // namespace dockmine::synth
