// Lineage model: which layers make up which image (Fig. 10 layer counts,
// Fig. 23 layer sharing).
//
// Sharing arises from three mechanisms, mirroring how real images are built:
//  * THE empty layer — every `RUN` that touches no files produces the same
//    empty diff; the paper found it referenced by 184,171 of 355,319 images
//    (~52%). We include it per image with that probability.
//  * Base stacks — popular distro bases (ubuntu, debian, alpine, ...) whose
//    layer stacks are inherited verbatim; base popularity is Zipf, so the
//    top base layers collect ~8-9% of images like the paper's top-5.
//  * Own layers — everything else is unique to its image, which is why ~90%
//    of layers have reference count 1.
//
// Layer ids encode their origin so LayerKind is recoverable without a map:
//   id 1                      -> the empty layer
//   [62..63]=1, base<<12|lvl  -> base-stack layer
//   [62..63]=2, img<<12|k     -> own (app) layer of image `img`
#pragma once

#include <cstdint>
#include <vector>

#include "dockmine/synth/calibration.h"
#include "dockmine/synth/layer_model.h"
#include "dockmine/util/rng.h"

namespace dockmine::synth {

struct ImageSpec {
  std::uint32_t repo_index = 0;
  std::vector<LayerId> layers;  ///< bottom-up order
};

class LineageModel {
 public:
  LineageModel(const Calibration& cal, std::uint64_t n_repositories,
               std::uint64_t seed);

  /// Compose the layer stack of image `image_index` (deterministic).
  /// Images within a cluster of `twin_cluster_size` may be twins of the
  /// cluster head: they share the head's base/own layers and add a few of
  /// their own (see calibration).
  ImageSpec compose(std::uint32_t repo_index, std::uint64_t image_index) const;

  /// Is this image a twin (variant of its cluster head)?
  bool is_twin(std::uint64_t image_index) const;

  static LayerKind kind_of(LayerId id) noexcept {
    if (id == LayerModel::kEmptyLayerId) return LayerKind::kEmpty;
    return (id >> 62) == 1 ? LayerKind::kBase : LayerKind::kApp;
  }

  static LayerId base_layer_id(std::uint64_t base, std::uint32_t level) noexcept {
    return (1ULL << 62) | (base << 12) | level;
  }
  static LayerId app_layer_id(std::uint64_t image, std::uint32_t k) noexcept {
    return (2ULL << 62) | (image << 12) | k;
  }

  std::uint64_t base_count() const noexcept { return base_stack_len_.size(); }
  std::uint32_t base_stack_length(std::uint64_t base) const {
    return base_stack_len_.at(base);
  }

 private:
  /// Deterministic non-twin composition plan of an image.
  struct Plan {
    std::uint64_t budget = 1;
    bool has_base = false;
    std::uint64_t base = 0;
    std::uint32_t base_take = 0;
    bool has_empty = false;
    std::uint32_t own_count = 0;
  };
  Plan plan_image(std::uint64_t image_index) const;
  std::uint64_t layers_per_image(util::Rng& rng) const;
  void append_plan_layers(const Plan& plan, std::uint64_t owner_index,
                          std::uint32_t own_limit, ImageSpec& spec) const;

  Calibration cal_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> base_stack_len_;
  stats::Zipf base_zipf_;
};

}  // namespace dockmine::synth
