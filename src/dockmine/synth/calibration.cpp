#include "dockmine/synth/calibration.h"

namespace dockmine::synth {

static_assert(Calibration::kFullRepositories == 457627);
static_assert(Calibration::kFullImagesDownloaded +
                  Calibration::kFullImagesFailed ==
              466703);

}  // namespace dockmine::synth
