#include "dockmine/synth/lineage.h"

#include <algorithm>
#include <cmath>

namespace dockmine::synth {

LineageModel::LineageModel(const Calibration& cal,
                           std::uint64_t n_repositories, std::uint64_t seed)
    : cal_(cal), seed_(seed), base_zipf_(1, cal.base_zipf_s) {
  const auto n_bases = static_cast<std::uint64_t>(std::max(
      12.0, static_cast<double>(n_repositories) * cal_.base_pool_per_repo));
  util::Rng rng(util::splitmix64(seed_));
  base_stack_len_.reserve(n_bases);
  for (std::uint64_t b = 0; b < n_bases; ++b) {
    base_stack_len_.push_back(static_cast<std::uint32_t>(rng.uniform_range(
        cal_.base_stack_layers_min, cal_.base_stack_layers_max)));
  }
  base_zipf_ = stats::Zipf(n_bases, cal_.base_zipf_s);
}

std::uint64_t LineageModel::layers_per_image(util::Rng& rng) const {
  if (rng.chance(cal_.layers_single_prob)) return 1;
  const stats::LogNormal model(std::log(cal_.layers_median),
                               cal_.layers_sigma);
  const auto n = static_cast<std::uint64_t>(std::llround(model.sample(rng)));
  return std::clamp<std::uint64_t>(n, 2, cal_.layers_max);
}

bool LineageModel::is_twin(std::uint64_t image_index) const {
  if (cal_.twin_cluster_size == 0 ||
      image_index % cal_.twin_cluster_size == 0) {
    return false;
  }
  std::uint64_t s = seed_ ^ (image_index * 0x2545f4914f6cdd1dULL);
  return util::splitmix64(s) % 10000 <
         static_cast<std::uint64_t>(cal_.twin_prob * 10000.0);
}

LineageModel::Plan LineageModel::plan_image(std::uint64_t image_index) const {
  std::uint64_t s = seed_ ^ (image_index * 0xd6e8feb86659fd93ULL);
  util::Rng rng(util::splitmix64(s));

  Plan plan;
  plan.budget = layers_per_image(rng);
  std::uint64_t remaining = plan.budget;

  if (remaining > 1 && rng.chance(cal_.base_stack_prob)) {
    plan.has_base = true;
    plan.base = base_zipf_.sample(rng) - 1;
    const std::uint32_t stack = base_stack_len_[plan.base];
    plan.base_take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(stack, remaining - 1));
    remaining -= plan.base_take;
  }
  if (remaining > 0 && rng.chance(cal_.empty_layer_prob)) {
    plan.has_empty = true;
    --remaining;
  }
  plan.own_count = static_cast<std::uint32_t>(remaining);
  return plan;
}

void LineageModel::append_plan_layers(const Plan& plan,
                                      std::uint64_t owner_index,
                                      std::uint32_t own_limit,
                                      ImageSpec& spec) const {
  if (plan.has_base) {
    for (std::uint32_t level = 0; level < plan.base_take; ++level) {
      spec.layers.push_back(base_layer_id(plan.base, level));
    }
  }
  if (plan.has_empty) spec.layers.push_back(LayerModel::kEmptyLayerId);
  const std::uint32_t own = std::min(plan.own_count, own_limit);
  for (std::uint32_t k = 0; k < own; ++k) {
    spec.layers.push_back(app_layer_id(owner_index, k));
  }
}

ImageSpec LineageModel::compose(std::uint32_t repo_index,
                                std::uint64_t image_index) const {
  ImageSpec spec;
  spec.repo_index = repo_index;

  if (is_twin(image_index)) {
    // Twin: share the cluster head's stack except its topmost own layer,
    // then add a few layers of our own.
    const std::uint64_t head =
        image_index - image_index % cal_.twin_cluster_size;
    const Plan head_plan = plan_image(head);
    const std::uint32_t reuse =
        head_plan.own_count > 1 ? head_plan.own_count - 1
                                : head_plan.own_count;
    append_plan_layers(head_plan, head, reuse, spec);

    std::uint64_t s = seed_ ^ (image_index * 0x9e6c63d0876a9a99ULL);
    util::Rng rng(util::splitmix64(s));
    const auto extra = static_cast<std::uint32_t>(rng.uniform_range(
        1, std::max<std::uint32_t>(1, cal_.twin_new_layers_max)));
    for (std::uint32_t k = 0; k < extra; ++k) {
      spec.layers.push_back(app_layer_id(image_index, k));
    }
    if (spec.layers.empty()) {
      spec.layers.push_back(app_layer_id(image_index, 0));
    }
    return spec;
  }

  const Plan plan = plan_image(image_index);
  append_plan_layers(plan, image_index, plan.own_count, spec);
  if (spec.layers.empty()) {
    spec.layers.push_back(app_layer_id(image_index, 0));
  }
  return spec;
}

}  // namespace dockmine::synth
