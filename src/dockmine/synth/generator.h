// Snapshot generator: assembles the whole synthetic Docker Hub — the
// repositories, images, layers, and file populations of the May-2017
// snapshot, at a configurable scale.
//
// The resulting `HubModel` is lightweight: per-image layer lists plus the
// deterministic sub-models. Layer contents stream on demand (metadata mode)
// or materialize into real gzipped tars (materialize.h, bytes mode).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dockmine/synth/calibration.h"
#include "dockmine/synth/file_model.h"
#include "dockmine/synth/layer_model.h"
#include "dockmine/synth/lineage.h"
#include "dockmine/synth/popularity.h"

namespace dockmine::synth {

struct RepoSpec {
  std::string name;
  bool official = false;
  bool requires_auth = false;  ///< manifest requests 401 without a token
  bool has_latest = true;      ///< absent `latest` tag (87% of failures)
  std::uint64_t pull_count = 0;
  std::int64_t image_index = -1;  ///< into HubModel::images, -1 if none
};

/// The generated snapshot. Move-only (owns the sub-models).
class HubModel {
 public:
  HubModel(Calibration cal, Scale scale);

  HubModel(const HubModel&) = delete;
  HubModel& operator=(const HubModel&) = delete;
  HubModel(HubModel&&) = default;

  const Calibration& calibration() const noexcept { return cal_; }
  const Scale& scale() const noexcept { return scale_; }

  const std::vector<RepoSpec>& repositories() const noexcept { return repos_; }
  const std::vector<ImageSpec>& images() const noexcept { return images_; }

  /// Every distinct layer in the snapshot (the paper's 1,792,609 at full
  /// scale): the empty layer, every referenced base layer, every own layer.
  const std::vector<LayerId>& unique_layers() const noexcept {
    return unique_layers_;
  }

  const FileModel& files() const noexcept { return *files_; }
  const LayerModel& layers() const noexcept { return *layers_; }
  const LineageModel& lineage() const noexcept { return *lineage_; }

  /// Deterministic spec of any layer id.
  LayerSpec layer_spec(LayerId id) const {
    return layers_->make_spec(id, LineageModel::kind_of(id));
  }

  /// Images whose download succeeds (repo has `latest` and is public).
  std::uint64_t downloadable_images() const noexcept { return downloadable_; }

 private:
  Calibration cal_;
  Scale scale_;
  std::vector<RepoSpec> repos_;
  std::vector<ImageSpec> images_;
  std::vector<LayerId> unique_layers_;
  std::unique_ptr<FileModel> files_;
  std::unique_ptr<LayerModel> layers_;
  std::unique_ptr<LineageModel> lineage_;
  std::uint64_t downloadable_ = 0;
};

/// Analytic expectation of mean files per (non-empty-able) layer under the
/// calibration; used to size the shared content pools before generation.
double expected_mean_files_per_layer(const Calibration& cal);

}  // namespace dockmine::synth
