#include "dockmine/synth/file_model.h"

#include <algorithm>
#include <cmath>

#include "dockmine/compress/content_gen.h"

namespace dockmine::synth {

namespace {

using filetype::Type;

struct RawSpec {
  Type type;
  double within_group_weight;  // weight inside its level-2 group
  double mean_size;            // bytes
  double gzip_ratio;
};

// Per-type mixture, fitted to Figs. 14-22 (count/capacity shares and the
// average file sizes the paper quotes: ELF ~312 KB, intermediate ~9 KB,
// zip/gzip 67 KB, bzip2 199 KB, tar 466 KB, xz 534 KB, DB group ~978 KB).
constexpr RawSpec kRawSpecs[] = {
    // --- EOL: "Com." 64%, ELF 30%, PE 2%, rest 4% (Fig. 16) ---
    {Type::kPythonBytecode, 0.480, 9.0e3, 2.6},
    {Type::kJavaClass, 0.130, 12.0e3, 2.6},
    {Type::kTerminfo, 0.030, 2.0e3, 2.5},
    {Type::kElfSharedObject, 0.180, 300.0e3, 2.5},
    {Type::kElfExecutable, 0.075, 420.0e3, 2.5},
    {Type::kElfRelocatable, 0.045, 150.0e3, 2.6},
    {Type::kMsExecutable, 0.020, 250.0e3, 1.8},
    {Type::kStaticLibrary, 0.012, 600.0e3, 3.0},
    {Type::kDebRpmPackage, 0.005, 500.0e3, 1.03},
    {Type::kCoff, 0.002, 100.0e3, 2.2},
    {Type::kMachO, 0.0001, 200.0e3, 2.0},
    {Type::kOtherEol, 0.0209, 80.0e3, 1.8},
    // --- Source code: C/C++ 80.3%, Perl 9%, Ruby 8% (Fig. 17) ---
    {Type::kCSource, 0.803, 18.0e3, 4.2},
    {Type::kPerlModule, 0.090, 22.0e3, 4.2},
    {Type::kRubyModule, 0.080, 7.0e3, 4.2},
    {Type::kPascalSource, 0.010, 15.0e3, 4.2},
    {Type::kFortranSource, 0.008, 15.0e3, 4.2},
    {Type::kBasicSource, 0.004, 8.0e3, 4.2},
    {Type::kLispSource, 0.005, 12.0e3, 4.2},
    // --- Scripts: Python 53.5%, shell 20%, Ruby 10% (Fig. 18) ---
    {Type::kPythonScript, 0.535, 13.0e3, 4.2},
    {Type::kShellScript, 0.200, 3.0e3, 4.2},
    {Type::kRubyScript, 0.100, 5.0e3, 4.2},
    {Type::kPerlScript, 0.040, 9.0e3, 4.2},
    {Type::kPhpScript, 0.035, 10.0e3, 4.2},
    {Type::kNodeScript, 0.035, 9.0e3, 4.2},
    {Type::kMakefile, 0.020, 5.0e3, 4.2},
    {Type::kM4Script, 0.010, 8.0e3, 4.2},
    {Type::kAwkScript, 0.008, 4.0e3, 4.2},
    {Type::kTclScript, 0.007, 6.0e3, 4.2},
    {Type::kOtherScript, 0.010, 6.0e3, 4.2},
    // --- Documents: ASCII 80%, XML/HTML 13%, UTF 5% (Fig. 19) ---
    {Type::kAsciiText, 0.800, 9.0e3, 4.2},
    {Type::kXmlHtml, 0.130, 14.0e3, 4.8},
    {Type::kUtf8Text, 0.050, 8.0e3, 3.2},
    {Type::kIso8859Text, 0.004, 7.0e3, 3.2},
    {Type::kPdfPs, 0.008, 200.0e3, 1.15},
    {Type::kLatex, 0.004, 20.0e3, 4.2},
    {Type::kOtherDocument, 0.004, 30.0e3, 2.5},
    // --- Archival: zip/gzip 96.3% (Fig. 20; avg sizes from the paper) ---
    {Type::kZipGzip, 0.963, 67.0e3, 1.03},
    {Type::kBzip2, 0.020, 199.0e3, 1.02},
    {Type::kTarArchive, 0.008, 466.0e3, 2.5},
    {Type::kXz, 0.005, 534.0e3, 1.01},
    {Type::kOtherArchive, 0.004, 100.0e3, 1.5},
    // --- Image media: PNG 67%, JPEG 20% (Fig. 22) ---
    {Type::kPng, 0.670, 22.0e3, 1.03},
    {Type::kJpeg, 0.200, 33.0e3, 1.02},
    {Type::kGif, 0.060, 15.0e3, 1.05},
    {Type::kSvg, 0.050, 8.0e3, 4.0},
    {Type::kOtherImage, 0.020, 20.0e3, 2.0},
    // --- Databases: BDB 33%, MySQL 30%, SQLite 7%/57% cap. (Fig. 21) ---
    {Type::kBerkeleyDb, 0.330, 500.0e3, 6.0},
    {Type::kMysql, 0.300, 400.0e3, 6.0},
    {Type::kSqlite, 0.070, 9.0e6, 8.0},
    {Type::kOtherDb, 0.300, 300.0e3, 5.0},
    // --- Other ---
    {Type::kOtherBinary, 0.975, 20.0e3, 2.2},
    {Type::kVideo, 0.010, 2.0e6, 1.02},
    {Type::kPdfPs, 0.0, 0.0, 1.0},  // sentinel row (never drawn)
};

constexpr double kSigmaDefault = 1.2;
// Group reweights for the biased mixtures (EOL, SC, Scr, Doc, Arch, Img,
// DB, Other). Big-file layers are archive/binary/DB heavy; file-heavy
// layers skew mildly toward small text-ish types.
constexpr double kBigFileReweight[8] = {4.5, 0.3, 0.3, 0.2, 1.8, 1.5, 15.0, 1.2};
constexpr double kSmallFileReweight[8] = {0.6, 1.1, 1.1, 1.6, 0.8, 0.9, 0.8, 0.9};
// Popular pool contents are smaller (the most repeated files are empty
// files, tiny scripts, license texts) -- this is what pushes the capacity
// dedup ratio (6.9x) below the count dedup ratio (31.5x).
constexpr double kRankSizeExponent = 0.30;

}  // namespace

FileModel::FileModel(const Calibration& cal,
                     std::uint64_t expected_instances, std::uint64_t seed)
    : cal_(cal), seed_(seed) {
  spec_of_type_.assign(filetype::kTypeCount, -1);
  group_members_.resize(filetype::kGroupCount);

  // Assemble absolute weights: group share x normalized within-group share.
  double group_totals[filetype::kGroupCount] = {};
  for (const RawSpec& raw : kRawSpecs) {
    if (raw.within_group_weight <= 0.0) continue;
    group_totals[static_cast<std::size_t>(filetype::group_of(raw.type))] +=
        raw.within_group_weight;
  }
  for (const RawSpec& raw : kRawSpecs) {
    if (raw.within_group_weight <= 0.0) continue;
    const auto group = filetype::group_of(raw.type);
    const auto g = static_cast<std::size_t>(group);
    TypeSpec spec;
    spec.type = raw.type;
    spec.weight = cal_.group_count_share[g] * raw.within_group_weight /
                  group_totals[g];
    spec.mean_size = raw.mean_size * std::max(1e-6, cal_.file_size_scale);
    spec.sigma = kSigmaDefault;
    spec.gzip_ratio = raw.gzip_ratio;
    spec_of_type_[static_cast<std::size_t>(raw.type)] =
        static_cast<std::int16_t>(specs_.size());
    group_members_[g].push_back(static_cast<std::uint32_t>(specs_.size()));
    specs_.push_back(spec);
  }

  // Group alias tables (neutral + biased) and per-group type tables.
  std::vector<double> neutral(filetype::kGroupCount), big(filetype::kGroupCount),
      small(filetype::kGroupCount);
  for (std::size_t g = 0; g < filetype::kGroupCount; ++g) {
    neutral[g] = cal_.group_count_share[g];
    big[g] = neutral[g] * kBigFileReweight[g];
    small[g] = neutral[g] * kSmallFileReweight[g];
    std::vector<double> member_weights;
    member_weights.reserve(group_members_[g].size());
    for (std::uint32_t idx : group_members_[g]) {
      member_weights.push_back(specs_[idx].weight);
    }
    if (member_weights.empty()) member_weights.push_back(1.0);
    per_group_alias_.emplace_back(member_weights);
  }
  group_alias_[static_cast<int>(SizeBias::kNeutral)] = stats::AliasTable(neutral);
  group_alias_[static_cast<int>(SizeBias::kBigFiles)] = stats::AliasTable(big);
  group_alias_[static_cast<int>(SizeBias::kSmallFiles)] = stats::AliasTable(small);

  // Pool sizing: distribute the Heaps-law distinct-content budget across
  // types proportionally to their instance counts.
  const double distinct_budget =
      kHeapsK * std::pow(static_cast<double>(std::max<std::uint64_t>(
                             expected_instances, 1000)),
                         kHeapsBeta);
  pool_sizes_.reserve(specs_.size());
  pool_zipf_.reserve(specs_.size());
  double total_weight = 0.0;
  for (const TypeSpec& spec : specs_) total_weight += spec.weight;
  for (const TypeSpec& spec : specs_) {
    const double share = spec.weight / total_weight;
    const double mult =
        cal_.pool_budget_mult[static_cast<std::size_t>(
            filetype::group_of(spec.type))];
    const auto pool = static_cast<std::uint64_t>(
        std::max<double>(static_cast<double>(cal_.pool_min_size),
                         distinct_budget * share * mult));
    pool_sizes_.push_back(pool);
    pool_zipf_.emplace_back(pool, cal_.pool_zipf_s);
    mean_file_size_ +=
        share * spec.mean_size;  // lognormal mean folded into mean_size below
  }
}

ContentId FileModel::make_pool_id(std::size_t type_index,
                                  std::uint64_t rank) const {
  const auto type = static_cast<std::uint64_t>(
      static_cast<std::uint8_t>(specs_[type_index].type));
  return (type << 56) | (rank & 0x00ffffffffffffffULL);
}

ContentId FileModel::draw_content(util::Rng& rng, SizeBias bias) const {
  // THE empty file.
  if (rng.chance(cal_.empty_file_prob)) return kEmptyContentId;

  const std::size_t g = group_alias_[static_cast<int>(bias)].sample(rng);
  const std::size_t member = per_group_alias_[g].sample(rng);
  const std::size_t spec_index =
      group_members_[g].empty() ? 0 : group_members_[g][member];

  if (rng.chance(cal_.fresh_prob[g])) {
    const auto type = static_cast<std::uint64_t>(
        static_cast<std::uint8_t>(specs_[spec_index].type));
    return (1ULL << 63) | (type << 56) | (rng() & 0x00ffffffffffffffULL);
  }
  const std::uint64_t rank = pool_zipf_[spec_index].sample(rng) - 1;
  return make_pool_id(spec_index, rank);
}

filetype::Type FileModel::type_of(ContentId id) const noexcept {
  if (id == kEmptyContentId) return filetype::Type::kEmpty;
  return static_cast<filetype::Type>(
      static_cast<std::uint8_t>((id >> 56) & 0x7f));
}

filetype::Group FileModel::group_of(ContentId id) const noexcept {
  return filetype::group_of(type_of(id));
}

std::uint64_t FileModel::size_of(ContentId id) const noexcept {
  if (id == kEmptyContentId) return 0;
  const auto spec_idx = spec_of_type_[static_cast<std::size_t>(type_of(id))];
  if (spec_idx < 0) return 0;
  const TypeSpec& spec = specs_[static_cast<std::size_t>(spec_idx)];

  // Deterministic per-content size: seed an Rng from (snapshot seed, id).
  std::uint64_t s = seed_ ^ (id * 0x9e3779b97f4a7c15ULL);
  util::Rng rng(util::splitmix64(s));

  // mu so that the lognormal MEAN equals spec.mean_size.
  const double sigma = spec.sigma;
  double mu = std::log(spec.mean_size) - sigma * sigma / 2.0;

  if (!is_fresh(id)) {
    // Rank-dependent shrink: popular (low-rank) contents are smaller. This
    // is what separates the paper's capacity dedup (6.9x) from its count
    // dedup (31.5x): hot contents (empty files, tiny scripts, licenses)
    // carry little capacity.
    const std::uint64_t rank = id & 0x00ffffffffffffffULL;
    const std::uint64_t pool = pool_sizes_[static_cast<std::size_t>(spec_idx)];
    const double rel =
        static_cast<double>(rank + 1) / static_cast<double>(pool + 1);
    // Normalize so the INSTANCE-weighted mean stays near spec.mean_size:
    // under Zipf(s) rank draws, E[(r/P)^a] ~= (1-s)/(1+a-s).
    const double s_exp = cal_.pool_zipf_s;
    const double norm = (1.0 + kRankSizeExponent - s_exp) / (1.0 - s_exp);
    mu += kRankSizeExponent * std::log(rel) + std::log(norm);
  }
  const double size = std::exp(mu + sigma * rng.normal());
  // Floor: room for the full magic signature plus the 16-char uniquifier
  // token materialize() embeds, so (a) every non-empty content classifies
  // to its intended type and (b) distinct content ids always materialize
  // to distinct bytes (bytes-mode dedup == metadata-mode dedup).
  const std::uint64_t floor_size =
      filetype::magic_for(type_of(id)).size() + 16;
  return std::max<std::uint64_t>(
      floor_size, static_cast<std::uint64_t>(std::max(1.0, size)));
}

double FileModel::gzip_ratio_of(ContentId id) const noexcept {
  if (id == kEmptyContentId) return 1.0;
  const auto spec_idx = spec_of_type_[static_cast<std::size_t>(type_of(id))];
  if (spec_idx < 0) return 1.5;
  double ratio = specs_[static_cast<std::size_t>(spec_idx)].gzip_ratio;
  // Sparse outliers: a small share of DB-like contents are mostly zero
  // pages and compress enormously -- these produce the far tail of the
  // paper's Fig. 4 (max layer ratio ~1026).
  if (ratio >= 5.0) {
    std::uint64_t h = id ^ seed_;
    if (util::splitmix64(h) % 10 == 0) ratio *= 120.0;
  }
  return std::min(ratio, 1026.0);
}

std::string FileModel::materialize(ContentId id) const {
  if (id == kEmptyContentId) return {};
  const filetype::Type type = type_of(id);
  const std::uint64_t size = size_of(id);
  std::uint64_t s = seed_ ^ (id * 0xc2b2ae3d27d4eb4fULL);
  util::Rng rng(util::splitmix64(s));

  // magic + 16-hex-char uniquifier + compressibility-tuned filler. The
  // token keeps distinct ids byte-distinct even for tiny files and is
  // plain ASCII so it never breaks the text heuristics.
  const std::string_view magic = filetype::magic_for(type);
  std::string out(magic);
  std::uint64_t token_seed = id ^ 0x5851f42d4c957f2dULL;
  const std::uint64_t token = util::splitmix64(token_seed);
  static constexpr char kHex[] = "0123456789abcdef";
  for (int nibble = 0; nibble < 16; ++nibble) {
    out += kHex[(token >> (4 * nibble)) & 0xf];
  }
  if (out.size() > size) {
    out.resize(size);  // unreachable given the size_of floor; safety net
    return out;
  }
  // Text-typed contents must stay printable ASCII or the classifier would
  // call them binary.
  const filetype::Group group = filetype::group_of(type);
  const bool ascii_safe =
      group == filetype::Group::kSourceCode ||
      group == filetype::Group::kScripts || type == filetype::Type::kAsciiText ||
      type == filetype::Type::kUtf8Text || type == filetype::Type::kIso8859Text ||
      type == filetype::Type::kXmlHtml || type == filetype::Type::kLatex ||
      type == filetype::Type::kSvg;
  out += compress::generate(static_cast<std::size_t>(size) - out.size(),
                            gzip_ratio_of(id), rng, ascii_safe);
  return out;
}

std::string FileModel::path_for(ContentId id, std::uint64_t instance_salt) const {
  return filetype::representative_path(type_of(id),
                                       util::splitmix64(instance_salt));
}

std::uint64_t FileModel::pool_entries(filetype::Type type) const noexcept {
  const auto spec_idx = spec_of_type_[static_cast<std::size_t>(type)];
  return spec_idx < 0 ? 0 : pool_sizes_[static_cast<std::size_t>(spec_idx)];
}

std::uint64_t FileModel::total_pool_entries() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t p : pool_sizes_) total += p;
  return total;
}

}  // namespace dockmine::synth
