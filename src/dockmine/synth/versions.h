// Multi-version (tag) extension — the paper's first future-work item:
// "we plan to extend our analysis to multiple versions of Docker images
// and study the dependencies among them" (§VI).
//
// Each repository gets a chain of historical tags (v1 ... vK, latest).
// Consecutive versions share their lower layers and differ in the top one
// or two — the way rebuilds of the same Dockerfile actually behave. The
// model quantifies cross-version redundancy: how much registry space tag
// history costs with and without layer sharing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/synth/generator.h"

namespace dockmine::synth {

struct TaggedImage {
  std::string tag;       ///< "v1", "v2", ..., or "latest"
  ImageSpec image;
};

class VersionModel {
 public:
  struct Options {
    double extra_tags_mean = 2.0;   ///< geometric mean of historical tags
    std::uint32_t max_tags = 20;
    /// Layers of version k rewritten relative to version k+1 (the top of
    /// the stack churns, the base never does).
    std::uint32_t churn_layers = 2;
  };

  explicit VersionModel(const HubModel& hub) : hub_(hub) {}
  VersionModel(const HubModel& hub, Options options)
      : hub_(hub), options_(options) {}

  /// Tag chain for one repository, oldest first, ending with the existing
  /// `latest` image. Repositories without `latest` have no versions.
  std::vector<TaggedImage> versions_for(std::size_t repo_index) const;

  /// Aggregate cross-version statistics over the whole hub.
  struct Stats {
    std::uint64_t repositories = 0;
    std::uint64_t tags = 0;              ///< including latest
    std::uint64_t logical_layer_refs = 0;
    std::uint64_t distinct_layers = 0;
    std::uint64_t logical_bytes = 0;     ///< sum of CLS over every tag
    std::uint64_t physical_bytes = 0;    ///< distinct layers only
    double sharing_ratio() const noexcept {
      return physical_bytes == 0
                 ? 1.0
                 : static_cast<double>(logical_bytes) /
                       static_cast<double>(physical_bytes);
    }
  };
  Stats analyze() const;

  /// Version-k app layer id: reuses the image-id space with a per-version
  /// salt so layer contents are deterministic and version-distinct.
  static LayerId versioned_layer_id(std::uint64_t image_index,
                                    std::uint32_t version,
                                    std::uint32_t k) noexcept {
    // Top bits pattern 3 distinguishes versioned layers from base (1),
    // app (2), and the empty layer.
    return (3ULL << 62) | ((image_index & 0xffffffffffULL) << 22) |
           (static_cast<std::uint64_t>(version & 0x3ff) << 12) | k;
  }

 private:
  const HubModel& hub_;
  Options options_{};
};

}  // namespace dockmine::synth
