#include "dockmine/synth/materialize.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "dockmine/compress/gzip.h"
#include "dockmine/json/json.h"
#include "dockmine/synth/versions.h"
#include "dockmine/tar/writer.h"

namespace dockmine::synth {

namespace {

/// Directory skeleton honoring (dir_count, max_depth): a spine of nested
/// directories reaching max_depth, remaining directories attached to spine
/// levels round-robin. Returns the path of every directory, spine first.
std::vector<std::string> build_dir_skeleton(const LayerSpec& spec,
                                            util::Rng& rng) {
  std::vector<std::string> dirs;
  const std::uint64_t want = std::max<std::uint64_t>(1, spec.dir_count);
  const std::uint32_t depth = std::max<std::uint32_t>(1, spec.max_depth);
  dirs.reserve(want);

  static constexpr std::string_view kNames[] = {
      "usr", "lib", "share", "etc", "var", "opt", "srv", "bin",
      "app", "src", "data",  "conf", "pkg", "mod", "sub", "dist"};

  // Spine: one directory per depth level.
  std::string spine;
  for (std::uint32_t level = 0; level < depth && dirs.size() < want; ++level) {
    if (!spine.empty()) spine += '/';
    spine += kNames[rng.uniform(std::size(kNames))];
    spine += std::to_string(level);
    dirs.push_back(spine);
  }
  // Extras: siblings attached to random spine prefixes (never deepening).
  std::uint64_t counter = 0;
  while (dirs.size() < want) {
    const std::uint32_t level =
        static_cast<std::uint32_t>(rng.uniform(depth));
    // Parent is the spine prefix at `level` (level 0 => filesystem root).
    std::string parent = level == 0 ? std::string() : dirs[level - 1];
    if (!parent.empty()) parent += '/';
    parent += kNames[rng.uniform(std::size(kNames))];
    parent += 'x';
    parent += std::to_string(counter++);
    dirs.push_back(std::move(parent));
  }
  return dirs;
}

std::string_view basename_view(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

/// Unique member basename: stem-<idx>.ext keeps the extension visible to
/// the classifier while guaranteeing uniqueness within the layer.
std::string unique_basename(std::string_view representative,
                            std::uint64_t index) {
  const std::string_view base = basename_view(representative);
  const std::size_t dot = base.rfind('.');
  if (dot == std::string_view::npos || dot == 0) {
    return std::string(base) + "-" + std::to_string(index);
  }
  return std::string(base.substr(0, dot)) + "-" + std::to_string(index) +
         std::string(base.substr(dot));
}

}  // namespace

std::string Materializer::layer_tar(const LayerSpec& spec) const {
  tar::Writer writer;
  if (spec.kind == LayerKind::kEmpty) {
    // THE empty diff: an archive with no members. Every image's empty
    // layer has this identical (and therefore shared) blob.
    return writer.finish();
  }

  std::uint64_t s = hub_.scale().seed ^ (spec.id * 0xa0761d6478bd642fULL);
  util::Rng rng{util::splitmix64(s)};
  if (spec.file_count == 0) {
    // File-less app layers (a RUN mkdir, a chmod, ...): one directory,
    // salted by the layer id so distinct model layers stay distinct blobs
    // under content addressing.
    writer.add_directory("state-" + std::to_string(rng()));
    return writer.finish();
  }
  const std::vector<std::string> dirs = build_dir_skeleton(spec, rng);
  for (const std::string& dir : dirs) writer.add_directory(dir);

  const FileModel& files = hub_.files();
  std::uint64_t index = 0;
  hub_.layers().for_each_file(spec, [&](const FileInstance& inst) {
    const std::string rep = files.path_for(inst.content, spec.id ^ index);
    const std::string& dir = dirs[index % dirs.size()];
    const std::string path = dir + "/" + unique_basename(rep, index);
    writer.add_file(path, files.materialize(inst.content));
    ++index;
  });
  return writer.finish();
}

util::Result<std::string> Materializer::layer_blob(const LayerSpec& spec) const {
  return compress::gzip_compress(layer_tar(spec), gzip_level_);
}

util::Result<std::uint64_t> Materializer::push_image(
    registry::Service& service, const std::string& repository,
    const std::string& tag, const ImageSpec& image,
    std::unordered_map<LayerId, std::pair<digest::Digest, std::uint64_t>>&
        blob_cache) const {
  registry::Manifest manifest;
  manifest.repository = repository;
  manifest.tag = tag;

  for (LayerId layer_id : image.layers) {
    auto it = blob_cache.find(layer_id);
    if (it == blob_cache.end()) {
      const LayerKind kind = (layer_id >> 62) == 3
                                 ? LayerKind::kApp
                                 : LineageModel::kind_of(layer_id);
      auto blob = layer_blob(hub_.layers().make_spec(layer_id, kind));
      if (!blob.ok()) return std::move(blob).error();
      const std::uint64_t size = blob.value().size();
      const digest::Digest digest =
          service.push_blob(std::move(blob).value());
      it = blob_cache.emplace(layer_id, std::make_pair(digest, size)).first;
    }
    manifest.layers.push_back(
        registry::LayerRef{it->second.first, it->second.second});
  }

  // Config blob: platform plus diff ids, like a real image config.
  json::Value config = json::Value::object();
  config.set("architecture", manifest.architecture);
  config.set("os", manifest.os);
  json::Value diff_ids = json::Value::array();
  for (const auto& layer : manifest.layers) {
    diff_ids.push_back(layer.digest.to_string());
  }
  json::Value rootfs = json::Value::object();
  rootfs.set("type", "layers");
  rootfs.set("diff_ids", std::move(diff_ids));
  config.set("rootfs", std::move(rootfs));
  std::string config_body = config.dump();
  manifest.config_size = config_body.size();
  manifest.config_digest = service.push_blob(std::move(config_body));

  auto pushed = service.push_manifest(manifest);
  if (!pushed.ok()) return std::move(pushed).error();
  return std::uint64_t{1};
}

util::Result<std::uint64_t> Materializer::populate(
    registry::Service& service) const {
  std::unordered_map<LayerId, std::pair<digest::Digest, std::uint64_t>>
      blob_cache;
  std::uint64_t manifests = 0;
  for (std::size_t i = 0; i < hub_.repositories().size(); ++i) {
    const RepoSpec& repo = hub_.repositories()[i];
    registry::Repository entry;
    entry.name = repo.name;
    entry.official = repo.official;
    entry.requires_auth = repo.requires_auth;
    entry.pull_count = repo.pull_count;
    service.put_repository(std::move(entry));
    if (repo.image_index < 0) continue;

    const ImageSpec& image =
        hub_.images()[static_cast<std::size_t>(repo.image_index)];
    auto pushed = push_image(service, repo.name, "latest", image, blob_cache);
    if (!pushed.ok()) return pushed;
    ++manifests;
  }
  return manifests;
}

util::Result<std::uint64_t> Materializer::populate_versions(
    registry::Service& service, const VersionModel& versions) const {
  std::unordered_map<LayerId, std::pair<digest::Digest, std::uint64_t>>
      blob_cache;
  std::uint64_t manifests = 0;
  for (std::size_t i = 0; i < hub_.repositories().size(); ++i) {
    const RepoSpec& repo = hub_.repositories()[i];
    for (const TaggedImage& tagged : versions.versions_for(i)) {
      auto pushed =
          push_image(service, repo.name, tagged.tag, tagged.image, blob_cache);
      if (!pushed.ok()) return pushed;
      ++manifests;
    }
  }
  return manifests;
}

}  // namespace dockmine::synth
