// Repository popularity (pull counts) — Fig. 8.
//
// The paper's distribution is a three-part mixture: a mass of barely-pulled
// repositories (peaks at 0-2 and 3-5 pulls), a second mode around 37 pulls
// (likely CI-driven repositories), and a Pareto tail reaching 650M pulls
// for the official `nginx`. The top of the tail is pinned to the actual
// top-5 the paper names.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "dockmine/synth/calibration.h"
#include "dockmine/util/rng.h"

namespace dockmine::synth {

struct OfficialRepo {
  std::string_view name;
  std::uint64_t pulls;
};

class PopularityModel {
 public:
  explicit PopularityModel(const Calibration& cal) : cal_(cal) {}

  /// Pull count for an ordinary repository.
  std::uint64_t sample(util::Rng& rng) const;

  /// The paper's named heavy hitters (§IV-B a): nginx 650M, cadvisor 434M,
  /// redis 264M, registrator 212M, ubuntu 28M.
  static std::span<const OfficialRepo> top_repositories();

 private:
  Calibration cal_;
};

}  // namespace dockmine::synth
