// File population model: the joint distribution of (type, size, content
// identity) for every file instance in the synthetic hub.
//
// Identity drives dedup (§V of the paper): each file instance either hits a
// shared per-type content pool (Zipf rank popularity) or mints a fresh
// never-repeated content. Pool sizes follow a Heaps-law fit to the paper's
// dedup-growth curve (Fig. 25: 3.6x at 2.9M files -> 31.5x at 5.28G files,
// i.e. distinct(N) ~= 20.9 * N^0.71). All per-content attributes (type,
// size, compressibility) are deterministic functions of the 64-bit content
// id, so metadata mode and bytes mode agree and parallel generation is
// order-independent.
//
// Content id layout:  [63] fresh flag | [56..62] type index | [0..55] rank
// (pool) or random tag (fresh). The single empty-file content (the paper's
// most-repeated file, 53.6M copies) has a reserved id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/filetype/classifier.h"
#include "dockmine/filetype/taxonomy.h"
#include "dockmine/stats/distributions.h"
#include "dockmine/synth/calibration.h"
#include "dockmine/util/rng.h"

namespace dockmine::synth {

using ContentId = std::uint64_t;

/// Heaps-law fit constants (see header comment).
inline constexpr double kHeapsK = 20.9;
inline constexpr double kHeapsBeta = 0.71;

/// Which file-type mixture a layer draws from (size-count
/// anticorrelation; see Calibration::bias_*).
enum class SizeBias : std::uint8_t { kNeutral, kBigFiles, kSmallFiles };

class FileModel {
 public:
  /// `expected_instances` is the anticipated number of file instances in
  /// the whole snapshot; it sizes the shared pools via Heaps' law.
  FileModel(const Calibration& cal, std::uint64_t expected_instances,
            std::uint64_t seed);

  /// Draw the content identity of one file instance.
  ContentId draw_content(util::Rng& rng,
                         SizeBias bias = SizeBias::kNeutral) const;

  // ---- deterministic attributes of a content id ----
  filetype::Type type_of(ContentId id) const noexcept;
  filetype::Group group_of(ContentId id) const noexcept;
  std::uint64_t size_of(ContentId id) const noexcept;
  /// Target gzip ratio of this content (by type).
  double gzip_ratio_of(ContentId id) const noexcept;

  static constexpr ContentId kEmptyContentId = 0x7f00000000000000ULL;
  static bool is_fresh(ContentId id) noexcept { return (id >> 63) != 0; }
  static bool is_empty(ContentId id) noexcept { return id == kEmptyContentId; }

  /// Materialize the actual bytes of a content (bytes mode). Deterministic:
  /// same id -> same bytes, so duplicate instances really deduplicate by
  /// SHA-256.
  std::string materialize(ContentId id) const;

  /// Tar path for an instance of this content. `instance_salt` varies the
  /// basename so two different files with identical content get distinct
  /// paths, as in real layers.
  std::string path_for(ContentId id, std::uint64_t instance_salt) const;

  std::uint64_t pool_entries(filetype::Type type) const noexcept;
  std::uint64_t total_pool_entries() const noexcept;

  /// Mean file size of the configured mixture (bytes); used by the layer
  /// model to convert file counts to expected layer sizes.
  double mean_file_size() const noexcept { return mean_file_size_; }

 private:
  struct TypeSpec {
    filetype::Type type;
    double weight;       // global count share (group share x within-group)
    double mean_size;    // bytes
    double sigma;        // lognormal shape
    double gzip_ratio;   // target compressibility
  };

  ContentId make_pool_id(std::size_t type_index, std::uint64_t rank) const;

  const Calibration cal_;
  std::uint64_t seed_;
  std::vector<TypeSpec> specs_;
  std::vector<stats::AliasTable> per_group_alias_;  // type choice inside group
  std::vector<std::vector<std::uint32_t>> group_members_;  // spec idx by group
  stats::AliasTable group_alias_[3];  // indexed by SizeBias
  std::vector<std::uint64_t> pool_sizes_;       // per spec
  std::vector<stats::Zipf> pool_zipf_;          // per spec
  double mean_file_size_ = 0.0;
  // type index <-> spec index maps
  std::vector<std::int16_t> spec_of_type_;
};

}  // namespace dockmine::synth
