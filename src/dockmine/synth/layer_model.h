// Per-layer population model: file/directory counts, depth, per-file
// streaming, and layer sizes (FLS / CLS).
//
// A layer's entire content is a deterministic function of its 64-bit layer
// id (plus the snapshot seed), so layers can be generated lazily, in
// parallel, and identically in metadata and bytes mode. Nothing per-file is
// stored: consumers stream.
#pragma once

#include <cstdint>
#include <functional>

#include "dockmine/digest/digest.h"
#include "dockmine/filetype/taxonomy.h"
#include "dockmine/synth/calibration.h"
#include "dockmine/synth/file_model.h"
#include "dockmine/util/rng.h"

namespace dockmine::synth {

using LayerId = std::uint64_t;

enum class LayerKind : std::uint8_t {
  kEmpty,  ///< THE shared empty layer (RUN steps that change nothing)
  kApp,    ///< ordinary application layer
  kBase,   ///< distro/base-image layer (heavily shared)
};

/// Shape of one layer (counts only; files stream separately).
struct LayerSpec {
  LayerId id = 0;
  LayerKind kind = LayerKind::kApp;
  std::uint64_t file_count = 0;
  std::uint64_t dir_count = 1;
  std::uint32_t max_depth = 1;
  SizeBias bias = SizeBias::kNeutral;  ///< file-type mixture for this layer
};

/// One file instance inside a layer.
struct FileInstance {
  ContentId content = 0;
  std::uint64_t size = 0;
  filetype::Type type = filetype::Type::kEmpty;
};

/// Aggregate sizes of a layer.
struct LayerSizes {
  std::uint64_t fls = 0;  ///< files-in-layer size (sum of file sizes)
  std::uint64_t cls = 0;  ///< compressed layer size (modeled in metadata
                          ///< mode, actual gzip size in bytes mode)
};

class LayerModel {
 public:
  static constexpr LayerId kEmptyLayerId = 1;

  LayerModel(const Calibration& cal, const FileModel& files,
             std::uint64_t seed);

  /// Deterministic spec for a layer id. `kind` selects the file-count
  /// component (kBase forces the big/distro component).
  LayerSpec make_spec(LayerId id, LayerKind kind) const;

  /// Stream every file of the layer in a fixed order.
  void for_each_file(const LayerSpec& spec,
                     const std::function<void(const FileInstance&)>& fn) const;

  /// FLS and modeled CLS (streams the files once).
  LayerSizes sizes(const LayerSpec& spec) const;

  /// Synthetic digest of the layer blob for metadata mode (bytes mode uses
  /// the SHA-256 of the real gzip bytes).
  digest::Digest synthetic_digest(LayerId id) const {
    return digest::Digest::from_u64(seed_ ^ (id * 0x9e3779b97f4a7c15ULL));
  }

  const FileModel& files() const noexcept { return files_; }

  // Modeled compressed-stream overheads (metadata mode): an empty gzipped
  // tar is ~45 bytes; each archive member adds roughly 60 compressed bytes
  // of header.
  static constexpr std::uint64_t kGzipBaseOverhead = 45;
  static constexpr std::uint64_t kPerFileOverhead = 60;

 private:
  util::Rng layer_rng(LayerId id, std::uint64_t salt) const;

  Calibration cal_;
  const FileModel& files_;
  std::uint64_t seed_;
};

}  // namespace dockmine::synth
