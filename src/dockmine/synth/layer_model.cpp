#include "dockmine/synth/layer_model.h"

#include <algorithm>
#include <cmath>

namespace dockmine::synth {

LayerModel::LayerModel(const Calibration& cal, const FileModel& files,
                       std::uint64_t seed)
    : cal_(cal), files_(files), seed_(seed) {}

util::Rng LayerModel::layer_rng(LayerId id, std::uint64_t salt) const {
  std::uint64_t s = seed_ ^ (id * 0x9e3779b97f4a7c15ULL) ^
                    (salt * 0xc2b2ae3d27d4eb4fULL);
  return util::Rng(util::splitmix64(s));
}

LayerSpec LayerModel::make_spec(LayerId id, LayerKind kind) const {
  LayerSpec spec;
  spec.id = id;
  spec.kind = kind;
  if (kind == LayerKind::kEmpty) {
    spec.file_count = 0;
    spec.dir_count = 1;
    spec.max_depth = 1;
    return spec;
  }

  util::Rng rng = layer_rng(id, /*salt=*/1);

  // --- file count (Fig. 5): per-image-class mixture ---
  const stats::LogNormal small(std::log(cal_.files_small_median),
                               cal_.files_small_sigma);
  const stats::LogNormal big(std::log(cal_.files_big_median),
                             cal_.files_big_sigma);
  double count;
  if (kind == LayerKind::kBase) {
    // Base stacks: the bottom layer is the distro rootfs; upper stack
    // layers are package additions. Level is encoded in the low id bits
    // (LineageModel::base_layer_id).
    const stats::LogNormal base(std::log(cal_.files_base_median),
                                cal_.files_base_sigma);
    const std::uint32_t level = static_cast<std::uint32_t>(id & 0xfff);
    count = level == 0 ? std::max(2.0, base.sample(rng))
                       : std::max(2.0, small.sample(rng));
  } else {
    // Own layer: heaviness is a deterministic property of the owning image
    // (id encodes the image index; see LineageModel::app_layer_id).
    const std::uint64_t image_index = (id >> 12) & 0x3ffffffffffffULL;
    std::uint64_t h = seed_ ^ (image_index * 0xe7037ed1a0b428dbULL);
    const bool heavy =
        util::splitmix64(h) % 10000 <
        static_cast<std::uint64_t>(cal_.image_heavy_prob * 10000.0);
    const double p0 = heavy ? cal_.heavy_empty_prob : cal_.light_empty_prob;
    const double p1 = p0 + (heavy ? cal_.heavy_single_prob
                                  : cal_.light_single_prob);
    const double u = rng.uniform01();
    if (u < p0) {
      count = 0;
    } else if (u < p1) {
      count = 1;
    } else {
      count = std::max(2.0, (heavy ? big : small).sample(rng));
    }
  }
  spec.file_count = std::min<std::uint64_t>(
      cal_.files_max,
      static_cast<std::uint64_t>(std::llround(std::max(0.0, count))));

  // Size-count anticorrelation -> file-type mixture of this layer.
  if (spec.file_count == 0) {
    spec.dir_count = 1;
    spec.max_depth = 1;
    return spec;
  }
  if (kind == LayerKind::kBase) {
    // Base bottoms are byte-heavy, file-light (runtime images: big
    // binaries, few files); upper stack layers mirror the global mix.
    spec.bias = (spec.id & 0xfff) == 0 ? SizeBias::kBigFiles
                                       : SizeBias::kNeutral;
  } else if (spec.file_count <= cal_.bias_big_max_files) {
    spec.bias = SizeBias::kBigFiles;
  } else if (spec.file_count >= cal_.bias_small_min_files) {
    spec.bias = SizeBias::kSmallFiles;
  }

  // --- max depth first (Fig. 7): lognormal, mode ~3 ---
  const stats::LogNormal depth_model(std::log(cal_.depth_median),
                                     cal_.depth_sigma);
  spec.max_depth = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(depth_model.sample(rng))), 1,
      cal_.depth_max));

  // --- directory count (Fig. 6): dirs ~ coeff * files^exponent * noise,
  // but never fewer than the depth (a depth-d tree needs d directories) ---
  const double f = static_cast<double>(spec.file_count);
  const double noise = std::exp(cal_.dirs_noise_sigma * rng.normal());
  const double dirs =
      cal_.dirs_coeff * std::pow(f, cal_.dirs_exponent) * noise;
  spec.dir_count = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(dirs)), spec.max_depth,
      cal_.dirs_max);
  if (spec.dir_count == 0) spec.dir_count = 1;
  return spec;
}

void LayerModel::for_each_file(
    const LayerSpec& spec,
    const std::function<void(const FileInstance&)>& fn) const {
  util::Rng rng = layer_rng(spec.id, /*salt=*/2);
  for (std::uint64_t i = 0; i < spec.file_count; ++i) {
    FileInstance inst;
    inst.content = files_.draw_content(rng, spec.bias);
    inst.size = files_.size_of(inst.content);
    inst.type = files_.type_of(inst.content);
    fn(inst);
  }
}

LayerSizes LayerModel::sizes(const LayerSpec& spec) const {
  LayerSizes out;
  out.cls = kGzipBaseOverhead;
  for_each_file(spec, [&](const FileInstance& inst) {
    out.fls += inst.size;
    const double ratio = files_.gzip_ratio_of(inst.content);
    out.cls += kPerFileOverhead +
               static_cast<std::uint64_t>(
                   static_cast<double>(inst.size) / std::max(1.0, ratio));
  });
  return out;
}

}  // namespace dockmine::synth
