#include "dockmine/tar/header.h"

#include <cstring>

namespace dockmine::tar {

namespace {

// ustar field offsets and sizes (POSIX.1-1988 + ustar extension).
constexpr std::size_t kNameOff = 0, kNameLen = 100;
constexpr std::size_t kModeOff = 100, kModeLen = 8;
constexpr std::size_t kUidOff = 108, kUidLen = 8;
constexpr std::size_t kGidOff = 116, kGidLen = 8;
constexpr std::size_t kSizeOff = 124, kSizeLen = 12;
constexpr std::size_t kMtimeOff = 136, kMtimeLen = 12;
constexpr std::size_t kChksumOff = 148, kChksumLen = 8;
constexpr std::size_t kTypeOff = 156;
constexpr std::size_t kLinkOff = 157, kLinkLen = 100;
constexpr std::size_t kMagicOff = 257;
constexpr std::size_t kUnameOff = 265, kUnameLen = 32;
constexpr std::size_t kGnameOff = 297, kGnameLen = 32;
constexpr std::size_t kPrefixOff = 345, kPrefixLen = 155;

constexpr char kMagic[8] = {'u', 's', 't', 'a', 'r', '\0', '0', '0'};

std::string_view c_string_view(std::string_view block, std::size_t off,
                               std::size_t len) {
  const std::string_view field = block.substr(off, len);
  const std::size_t end = field.find('\0');
  return field.substr(0, end == std::string_view::npos ? len : end);
}

std::uint32_t header_checksum(std::string_view block) {
  // Branch-free so the whole-block sum vectorizes: add every byte, then
  // swap the checksum field's contribution for the spaces it counts as.
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    sum += static_cast<unsigned char>(block[i]);
  }
  for (std::size_t i = kChksumOff; i < kChksumOff + kChksumLen; ++i) {
    sum -= static_cast<unsigned char>(block[i]);
  }
  return sum + kChksumLen * 0x20u;
}

}  // namespace

void write_octal(char* field, std::size_t field_size, std::uint64_t value) {
  // NUL-terminated, zero-padded octal, the most interoperable convention.
  const std::size_t digits = field_size - 1;
  field[digits] = '\0';
  for (std::size_t i = 0; i < digits; ++i) {
    field[digits - 1 - i] = static_cast<char>('0' + (value & 7));
    value >>= 3;
  }
}

util::Result<std::uint64_t> read_octal(std::string_view field) {
  std::uint64_t value = 0;
  bool seen_digit = false;
  for (char c : field) {
    if (c == '\0') break;
    if (c == ' ') {
      if (seen_digit) break;
      continue;
    }
    if (c < '0' || c > '7') {
      return util::corrupt("non-octal character in tar numeric field");
    }
    value = (value << 3) | static_cast<std::uint64_t>(c - '0');
    seen_digit = true;
  }
  return value;
}

void encode_header(const Header& header, std::string& out) {
  char block[kBlockSize];
  std::memset(block, 0, sizeof block);

  std::memcpy(block + kNameOff, header.name.data(),
              std::min<std::size_t>(header.name.size(), kNameLen));
  write_octal(block + kModeOff, kModeLen, header.mode);
  write_octal(block + kUidOff, kUidLen, 0);
  write_octal(block + kGidOff, kGidLen, 0);
  const bool has_body = header.type == EntryType::kFile ||
                        header.type == EntryType::kGnuLongName;
  write_octal(block + kSizeOff, kSizeLen, has_body ? header.size : 0);
  write_octal(block + kMtimeOff, kMtimeLen, header.mtime);
  block[kTypeOff] = static_cast<char>(header.type);
  std::memcpy(block + kLinkOff, header.linkname.data(),
              std::min<std::size_t>(header.linkname.size(), kLinkLen));
  std::memcpy(block + kMagicOff, kMagic, sizeof kMagic);
  std::memcpy(block + kUnameOff, header.uname.data(),
              std::min<std::size_t>(header.uname.size(), kUnameLen));
  std::memcpy(block + kGnameOff, header.gname.data(),
              std::min<std::size_t>(header.gname.size(), kGnameLen));

  const std::uint32_t sum = header_checksum(std::string_view(block, kBlockSize));
  // Classic format: 6 octal digits, NUL, space.
  char chksum[8];
  write_octal(chksum, 7, sum);
  chksum[7] = ' ';
  std::memcpy(block + kChksumOff, chksum, 8);

  out.append(block, kBlockSize);
}

bool is_zero_block(std::string_view block) noexcept {
  for (char c : block) {
    if (c != '\0') return false;
  }
  return true;
}

util::Status decode_header_into(std::string_view block, Header& header) {
  if (block.size() != kBlockSize) {
    return util::corrupt("tar header block must be 512 bytes");
  }
  if (is_zero_block(block)) {
    return util::not_found("end-of-archive zero block");
  }
  auto want_sum = read_octal(block.substr(kChksumOff, kChksumLen));
  if (!want_sum.ok()) return std::move(want_sum).error();
  if (header_checksum(block) != want_sum.value()) {
    return util::corrupt("tar header checksum mismatch");
  }

  const std::string_view name = c_string_view(block, kNameOff, kNameLen);
  // ustar prefix field extends names to 255 chars.
  const std::string_view prefix = c_string_view(block, kPrefixOff, kPrefixLen);
  if (prefix.empty()) {
    header.name.assign(name);
  } else {
    header.name.clear();
    header.name.reserve(prefix.size() + 1 + name.size());
    header.name.append(prefix);
    header.name.push_back('/');
    header.name.append(name);
  }

  auto mode = read_octal(block.substr(kModeOff, kModeLen));
  if (!mode.ok()) return std::move(mode).error();
  header.mode = static_cast<std::uint32_t>(mode.value());

  auto size = read_octal(block.substr(kSizeOff, kSizeLen));
  if (!size.ok()) return std::move(size).error();
  header.size = size.value();

  auto mtime = read_octal(block.substr(kMtimeOff, kMtimeLen));
  if (!mtime.ok()) return std::move(mtime).error();
  header.mtime = mtime.value();

  const char type = block[kTypeOff];
  header.type = type == '\0' ? EntryType::kFile : static_cast<EntryType>(type);
  header.linkname.assign(c_string_view(block, kLinkOff, kLinkLen));
  header.uname.assign(c_string_view(block, kUnameOff, kUnameLen));
  header.gname.assign(c_string_view(block, kGnameOff, kGnameLen));
  return util::Status::success();
}

util::Result<Header> decode_header(std::string_view block) {
  Header header;
  if (auto s = decode_header_into(block, header); !s.ok()) return s.error();
  return header;
}

}  // namespace dockmine::tar
