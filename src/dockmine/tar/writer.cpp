#include "dockmine/tar/writer.h"

#include <cassert>

namespace dockmine::tar {

void Writer::maybe_long_name(std::string_view path) {
  if (path.size() < 100) return;
  // GNU long-name extension: an 'L' typed entry named "././@LongLink" whose
  // body is the real NUL-terminated path.
  Header long_header;
  long_header.name = "././@LongLink";
  long_header.type = EntryType::kGnuLongName;
  long_header.size = path.size() + 1;
  encode_header(long_header, buffer_);
  buffer_.append(path.data(), path.size());
  buffer_ += '\0';
  buffer_.append(padding_for(path.size() + 1), '\0');
}

void Writer::add_entry(Header header, std::string_view content) {
  assert(!finished_);
  maybe_long_name(header.name);
  if (header.name.size() >= 100) {
    header.name = header.name.substr(0, 99);  // truncated stub; real name in 'L'
  }
  encode_header(header, buffer_);
  if (!content.empty()) {
    buffer_.append(content.data(), content.size());
    buffer_.append(padding_for(content.size()), '\0');
  }
  ++entries_;
}

void Writer::add_file(std::string_view path, std::string_view content,
                      std::uint32_t mode, std::uint64_t mtime) {
  Header header;
  header.name = std::string(path);
  header.mode = mode;
  header.size = content.size();
  header.mtime = mtime;
  header.type = EntryType::kFile;
  header.uname = "root";
  header.gname = "root";
  add_entry(std::move(header), content);
}

void Writer::add_directory(std::string_view path, std::uint32_t mode,
                           std::uint64_t mtime) {
  Header header;
  header.name = std::string(path);
  if (!header.name.empty() && header.name.back() != '/') header.name += '/';
  header.mode = mode;
  header.mtime = mtime;
  header.type = EntryType::kDirectory;
  header.uname = "root";
  header.gname = "root";
  add_entry(std::move(header), {});
}

void Writer::add_symlink(std::string_view path, std::string_view target,
                         std::uint64_t mtime) {
  Header header;
  header.name = std::string(path);
  header.linkname = std::string(target);
  header.mode = 0777;
  header.mtime = mtime;
  header.type = EntryType::kSymlink;
  add_entry(std::move(header), {});
}

void Writer::add_hardlink(std::string_view path, std::string_view target,
                          std::uint64_t mtime) {
  Header header;
  header.name = std::string(path);
  header.linkname = std::string(target);
  header.mode = 0644;
  header.mtime = mtime;
  header.type = EntryType::kHardLink;
  add_entry(std::move(header), {});
}

void Writer::add_whiteout(std::string_view dir, std::string_view name) {
  std::string path(dir);
  if (!path.empty() && path.back() != '/') path += '/';
  path += ".wh.";
  path += name;
  add_file(path, {}, 0644, 0);
}

std::string Writer::finish() {
  assert(!finished_);
  finished_ = true;
  buffer_.append(2 * kBlockSize, '\0');
  return std::move(buffer_);
}

}  // namespace dockmine::tar
