// In-memory tar archive writer. Produces the byte stream that, gzipped,
// becomes a Docker layer blob.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dockmine/tar/header.h"

namespace dockmine::tar {

class Writer {
 public:
  Writer() = default;

  /// Add a regular file. Long paths (>100 bytes) are handled via a GNU 'L'
  /// long-name pseudo entry, like GNU tar and Docker's archive writer.
  void add_file(std::string_view path, std::string_view content,
                std::uint32_t mode = 0644, std::uint64_t mtime = 0);

  void add_directory(std::string_view path, std::uint32_t mode = 0755,
                     std::uint64_t mtime = 0);

  void add_symlink(std::string_view path, std::string_view target,
                   std::uint64_t mtime = 0);

  void add_hardlink(std::string_view path, std::string_view target,
                    std::uint64_t mtime = 0);

  /// Overlay whiteout marker (".wh.<name>") — how aufs/overlay record a
  /// deletion in an upper layer. An empty regular file with a magic name.
  void add_whiteout(std::string_view dir, std::string_view name);

  std::size_t entry_count() const noexcept { return entries_; }

  /// Finish the archive (two zero blocks) and return the bytes.
  /// The writer is spent afterwards.
  std::string finish();

  /// Current archive size so far (without the trailer).
  std::size_t size_so_far() const noexcept { return buffer_.size(); }

 private:
  void add_entry(Header header, std::string_view content);
  void maybe_long_name(std::string_view path);

  std::string buffer_;
  std::size_t entries_ = 0;
  bool finished_ = false;
};

}  // namespace dockmine::tar
