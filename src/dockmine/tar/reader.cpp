#include "dockmine/tar/reader.h"

namespace dockmine::tar {

bool Entry::is_whiteout() const noexcept {
  std::string_view name = header.name;
  const std::size_t slash = name.rfind('/');
  if (slash != std::string_view::npos) name = name.substr(slash + 1);
  return name.substr(0, 4) == ".wh.";
}

util::Result<std::optional<Entry>> Reader::next() {
  if (failed_) return util::corrupt("reader in failed state");
  std::string pending_long_name;
  for (;;) {
    if (pos_ + kBlockSize > archive_.size()) {
      // Clean end without the zero-block trailer is tolerated (some writers
      // truncate); mid-header garbage is not.
      if (pos_ == archive_.size()) return std::optional<Entry>{};
      failed_ = true;
      return util::corrupt("trailing partial block in tar stream");
    }
    const std::string_view block = archive_.substr(pos_, kBlockSize);
    if (is_zero_block(block)) {
      // End marker: two zero blocks; accept one as well.
      return std::optional<Entry>{};
    }
    auto header = decode_header(block);
    if (!header.ok()) {
      failed_ = true;
      return std::move(header).error();
    }
    pos_ += kBlockSize;

    const std::uint64_t body_size = header.value().size;
    const bool has_body = header.value().type == EntryType::kFile ||
                          header.value().type == EntryType::kGnuLongName;
    const std::uint64_t stored = has_body ? body_size : 0;
    if (pos_ + stored > archive_.size()) {
      failed_ = true;
      return util::corrupt("tar entry body extends past archive end");
    }
    const std::string_view body = archive_.substr(pos_, stored);
    pos_ += stored + padding_for(stored);
    if (pos_ > archive_.size()) pos_ = archive_.size();

    if (header.value().type == EntryType::kGnuLongName) {
      // Body holds the real name (NUL-terminated) of the *next* entry.
      pending_long_name = std::string(body.substr(0, body.find('\0')));
      continue;
    }

    Entry entry{std::move(header).value(), body};
    if (!pending_long_name.empty()) {
      entry.header.name = std::move(pending_long_name);
    }
    return std::optional<Entry>{std::move(entry)};
  }
}

}  // namespace dockmine::tar
