#include "dockmine/tar/reader.h"

namespace dockmine::tar {

bool Entry::is_whiteout() const noexcept {
  std::string_view name = header.name;
  const std::size_t slash = name.rfind('/');
  if (slash != std::string_view::npos) name = name.substr(slash + 1);
  return name.substr(0, 4) == ".wh.";
}

util::Result<bool> Reader::next(Entry& out) {
  if (failed_) return util::corrupt("reader in failed state");
  bool have_long_name = false;
  for (;;) {
    if (pos_ + kBlockSize > archive_.size()) {
      // Clean end without the zero-block trailer is tolerated (some writers
      // truncate); mid-header garbage is not.
      if (pos_ == archive_.size()) return false;
      failed_ = true;
      return util::corrupt("trailing partial block in tar stream");
    }
    const std::string_view block = archive_.substr(pos_, kBlockSize);
    if (is_zero_block(block)) {
      // End marker: two zero blocks; accept one as well.
      return false;
    }
    if (auto s = decode_header_into(block, out.header); !s.ok()) {
      failed_ = true;
      return s.error();
    }
    pos_ += kBlockSize;

    const std::uint64_t body_size = out.header.size;
    const bool has_body = out.header.type == EntryType::kFile ||
                          out.header.type == EntryType::kGnuLongName;
    const std::uint64_t stored = has_body ? body_size : 0;
    if (pos_ + stored > archive_.size()) {
      failed_ = true;
      return util::corrupt("tar entry body extends past archive end");
    }
    const std::string_view body = archive_.substr(pos_, stored);
    pos_ += stored + padding_for(stored);
    if (pos_ > archive_.size()) pos_ = archive_.size();

    if (out.header.type == EntryType::kGnuLongName) {
      // Body holds the real name (NUL-terminated) of the *next* entry.
      long_name_.assign(body.substr(0, body.find('\0')));
      have_long_name = true;
      continue;
    }

    out.content = body;
    // Swap rather than assign: the displaced short name's capacity becomes
    // next round's long-name scratch.
    if (have_long_name) out.header.name.swap(long_name_);
    return true;
  }
}

util::Result<std::optional<Entry>> Reader::next() {
  Entry entry;
  auto got = next(entry);
  if (!got.ok()) return std::move(got).error();
  if (!got.value()) return std::optional<Entry>{};
  return std::optional<Entry>{std::move(entry)};
}

}  // namespace dockmine::tar
