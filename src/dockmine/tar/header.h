// POSIX ustar header block: layout, octal field codecs, checksum.
//
// Docker layers are tar archives; the analyzer "decompresses and extracts
// each layer tarball" (paper §III-C). We implement the format from scratch:
// 512-byte blocks, ustar magic, octal-encoded numeric fields, and the GNU
// 'L' long-name extension for paths beyond 100 bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dockmine/util/error.h"

namespace dockmine::tar {

inline constexpr std::size_t kBlockSize = 512;

enum class EntryType : char {
  kFile = '0',
  kHardLink = '1',
  kSymlink = '2',
  kCharDevice = '3',
  kBlockDevice = '4',
  kDirectory = '5',
  kFifo = '6',
  kGnuLongName = 'L',  // GNU extension: next entry's name in this body
};

/// Parsed view of one header block.
struct Header {
  std::string name;       // full path (prefix joined, long-name resolved)
  std::uint32_t mode = 0644;
  std::uint64_t size = 0;  // body size in bytes (files only)
  std::uint64_t mtime = 0;
  EntryType type = EntryType::kFile;
  std::string linkname;
  std::string uname;
  std::string gname;
};

/// Encode `header` into a 512-byte ustar block appended to `out`.
/// Precondition: name fits in 100 bytes (the writer handles longer names by
/// emitting a GNU 'L' entry first).
void encode_header(const Header& header, std::string& out);

/// Decode the block at `block` (exactly kBlockSize bytes).
/// A block of all zeros yields kNotFound (end-of-archive marker);
/// a checksum mismatch yields kCorrupt.
util::Result<Header> decode_header(std::string_view block);

/// Allocation-reusing variant: decodes into `header`, assigning over its
/// string fields so a caller looping over millions of entries amortizes
/// their capacity instead of paying four heap allocations per entry. On
/// failure `header` is unspecified. Same error contract as decode_header.
util::Status decode_header_into(std::string_view block, Header& header);

/// True if the 512 bytes are all zero.
bool is_zero_block(std::string_view block) noexcept;

/// Octal field codec, exposed for tests.
void write_octal(char* field, std::size_t field_size, std::uint64_t value);
util::Result<std::uint64_t> read_octal(std::string_view field);

/// Bytes of padding needed to reach the next 512-byte boundary.
constexpr std::size_t padding_for(std::uint64_t size) noexcept {
  return static_cast<std::size_t>((kBlockSize - size % kBlockSize) % kBlockSize);
}

}  // namespace dockmine::tar
