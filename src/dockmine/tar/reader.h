// Streaming tar reader over an in-memory archive. The analyzer walks layer
// tarballs entry by entry — content is exposed as a view into the archive
// buffer, so profiling a layer does not copy file bodies.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "dockmine/tar/header.h"
#include "dockmine/util/error.h"

namespace dockmine::tar {

/// One archive member with a non-owning view of its body.
struct Entry {
  Header header;
  std::string_view content;

  bool is_file() const noexcept { return header.type == EntryType::kFile; }
  bool is_directory() const noexcept {
    return header.type == EntryType::kDirectory;
  }
  bool is_symlink() const noexcept {
    return header.type == EntryType::kSymlink;
  }

  /// Overlay whiteout marker? (basename starts with ".wh.")
  bool is_whiteout() const noexcept;
};

class Reader {
 public:
  /// `archive` must outlive the reader and all returned entries.
  explicit Reader(std::string_view archive) : archive_(archive) {}

  /// Next entry, or std::nullopt at the end-of-archive marker (or at a
  /// clean end of input). GNU 'L' long-name entries are resolved
  /// transparently. Errors are sticky: after a kCorrupt result the reader
  /// refuses to continue.
  util::Result<std::optional<Entry>> next();

  /// Allocation-reusing variant: decodes into `out` (assigning over its
  /// header strings, so a caller looping with one Entry amortizes their
  /// capacity) and returns true, or false at end of archive. Same error
  /// contract as next().
  util::Result<bool> next(Entry& out);

  /// Convenience: iterate all entries, invoking `fn(entry)`. The Entry is
  /// reused between calls — `fn` must copy anything it retains. Stops
  /// early and returns the error on corruption.
  template <typename Fn>
  util::Status for_each(Fn&& fn) {
    Entry entry;
    for (;;) {
      auto got = next(entry);
      if (!got.ok()) return std::move(got).error();
      if (!got.value()) return util::Status::success();
      fn(entry);
    }
  }

 private:
  std::string_view archive_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string long_name_;  ///< reused GNU 'L' scratch across entries
};

}  // namespace dockmine::tar
