// Read-path point lookups over exported shard sets.
//
// The ShardMerger streams runs into aggregates and throws the entries away;
// merge_to_index rebuilds a FileDedupIndex but re-hashes every entry. A
// query daemon sitting on top of exported shard sets wants something in
// between: fold the runs once at load time into a single key-sorted vector
// (runs are already sorted, so the fold is a k-way merge, and the global
// order is just the concatenation of the shard partitions) and answer point
// lookups by binary search. Entries stay contiguous — no per-node
// allocation, cache-friendly scans for free via for_each.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/shard/run_format.h"
#include "dockmine/util/error.h"

namespace dockmine::shard {

class ShardSetIndex {
 public:
  ShardSetIndex() = default;

  /// Fold every run of every exported shard set in `dirs` (each holding a
  /// shardset.json) into one key-sorted entry vector. Duplicate keys across
  /// runs/sets fold with dedup::merge_content_entries, so the resulting
  /// entries are exactly the monolithic index's. Validation is the run
  /// format's: a corrupt run fails the open, it never skews a lookup.
  static util::Result<ShardSetIndex> open(const std::vector<std::string>& dirs);

  /// Point lookup by content key; nullptr when the content was never
  /// observed.
  const dedup::ContentEntry* find(std::uint64_t key) const;

  std::uint64_t distinct_contents() const noexcept { return entries_.size(); }
  std::uint64_t runs_folded() const noexcept { return runs_; }

  /// Iterate entries in ascending key order: fn(key, entry).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const RunEntry& entry : entries_) fn(entry.key, entry.entry);
  }

 private:
  std::vector<RunEntry> entries_;  ///< sorted strictly ascending by key
  std::uint64_t runs_ = 0;
};

}  // namespace dockmine::shard
