#include "dockmine/shard/run_format.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "dockmine/compress/crc32.h"
#include "dockmine/filetype/taxonomy.h"

namespace dockmine::shard {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

bool is_power_of_two(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2_of(std::uint32_t v) {
  std::uint32_t bits = 0;
  while ((1u << bits) < v) ++bits;
  return bits;
}

/// Top log2(shard_count) bits of the key select the shard.
std::uint32_t partition_of(std::uint64_t key, std::uint32_t shard_count) {
  if (shard_count == 1) return 0;
  return static_cast<std::uint32_t>(key >> (64 - log2_of(shard_count)));
}

void encode_entry(std::string& out, const RunEntry& e) {
  put_u64(out, e.key);
  put_u64(out, e.entry.count);
  put_u64(out, e.entry.size);
  put_u32(out, e.entry.first_layer);
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(e.entry.type)));
  out.push_back(static_cast<char>(e.entry.multi_layer ? 1 : 0));
  out.push_back('\0');
  out.push_back('\0');
}

/// Decode + validate one entry slot. `prev_key` is the previous key (0 before
/// the first entry — valid keys are nonzero, so 0 doubles as "none").
util::Status decode_entry(const char* p, std::uint64_t index,
                          std::uint64_t prev_key, std::uint32_t shard_count,
                          std::uint32_t shard_index, RunEntry& out) {
  out.key = get_u64(p);
  out.entry.count = get_u64(p + 8);
  out.entry.size = get_u64(p + 16);
  out.entry.first_layer = get_u32(p + 24);
  const auto type = static_cast<std::uint8_t>(p[28]);
  const auto flags = static_cast<std::uint8_t>(p[29]);
  const auto pad = static_cast<std::uint8_t>(p[30]) |
                   static_cast<std::uint8_t>(p[31]);
  const std::string at = " at entry " + std::to_string(index);
  if (out.key == 0) return util::corrupt("shard run: zero content key" + at);
  if (out.key <= prev_key)
    return util::corrupt("shard run: keys not strictly ascending" + at);
  if (partition_of(out.key, shard_count) != shard_index)
    return util::corrupt("shard run: key outside shard partition" + at);
  if (out.entry.count == 0)
    return util::corrupt("shard run: zero observation count" + at);
  if (type >= filetype::kTypeCount)
    return util::corrupt("shard run: file type out of range" + at);
  if ((flags & ~1u) != 0 || pad != 0)
    return util::corrupt("shard run: reserved flag/pad bits set" + at);
  out.entry.type = static_cast<filetype::Type>(type);
  out.entry.multi_layer = (flags & 1u) != 0;
  return util::Status::success();
}

/// Validate a 32-byte header against `file_size`; on success fill the outs.
util::Status decode_header(const char* h, std::uint64_t file_size,
                           std::uint32_t& shard_count,
                           std::uint32_t& shard_index, std::uint32_t& crc,
                           std::uint64_t& entry_count) {
  if (std::memcmp(h, kRunMagic.data(), kRunMagic.size()) != 0)
    return util::corrupt("shard run: bad magic");
  const std::uint32_t version = get_u32(h + 8);
  if (version != kRunVersion)
    return util::corrupt("shard run: unsupported version " +
                         std::to_string(version));
  shard_count = get_u32(h + 12);
  shard_index = get_u32(h + 16);
  crc = get_u32(h + 20);
  entry_count = get_u64(h + 24);
  if (!is_power_of_two(shard_count))
    return util::corrupt("shard run: shard_count not a power of two");
  if (shard_index >= shard_count)
    return util::corrupt("shard run: shard_index out of range");
  const std::uint64_t expect =
      kRunHeaderBytes + entry_count * kRunEntryBytes;
  if (entry_count > (file_size - kRunHeaderBytes) / kRunEntryBytes ||
      file_size != expect)
    return util::corrupt("shard run: size mismatch (truncated or padded)");
  return util::Status::success();
}

}  // namespace

std::string encode_run(std::uint32_t shard_count, std::uint32_t shard_index,
                       const std::vector<RunEntry>& entries) {
  std::string payload;
  payload.reserve(entries.size() * kRunEntryBytes);
  for (const RunEntry& e : entries) encode_entry(payload, e);

  std::string out;
  out.reserve(kRunHeaderBytes + payload.size());
  out.append(kRunMagic);
  put_u32(out, kRunVersion);
  put_u32(out, shard_count);
  put_u32(out, shard_index);
  put_u32(out, compress::Crc32::of(payload));
  put_u64(out, entries.size());
  out.append(payload);
  return out;
}

util::Result<std::vector<RunEntry>> decode_run(std::string_view bytes,
                                               std::uint32_t* shard_count_out,
                                               std::uint32_t* shard_index_out) {
  if (bytes.size() < kRunHeaderBytes)
    return util::corrupt("shard run: shorter than header");
  std::uint32_t shard_count = 0, shard_index = 0, crc = 0;
  std::uint64_t entry_count = 0;
  if (auto s = decode_header(bytes.data(), bytes.size(), shard_count,
                             shard_index, crc, entry_count);
      !s.ok())
    return s.error();
  const std::string_view payload = bytes.substr(kRunHeaderBytes);
  if (compress::Crc32::of(payload) != crc)
    return util::corrupt("shard run: payload checksum mismatch");

  std::vector<RunEntry> entries;
  entries.reserve(static_cast<std::size_t>(entry_count));
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    RunEntry e;
    if (auto s = decode_entry(payload.data() + i * kRunEntryBytes, i, prev_key,
                              shard_count, shard_index, e);
        !s.ok())
      return s.error();
    prev_key = e.key;
    entries.push_back(e);
  }
  if (shard_count_out != nullptr) *shard_count_out = shard_count;
  if (shard_index_out != nullptr) *shard_index_out = shard_index;
  return entries;
}

util::Status write_run_file(const std::string& path,
                            std::uint32_t shard_count,
                            std::uint32_t shard_index,
                            const std::vector<RunEntry>& entries) {
  const std::string bytes = encode_run(shard_count, shard_index, entries);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::internal("shard run: cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return util::internal("shard run: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return util::internal("shard run: cannot rename into " + path);
  }
  return util::Status::success();
}

util::Result<RunReader> RunReader::open(const std::string& path) {
  RunReader reader;
  reader.path_ = path;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_) return util::not_found("shard run: cannot open " + path);

  reader.in_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(reader.in_.tellg());
  reader.in_.seekg(0, std::ios::beg);
  if (file_size < kRunHeaderBytes)
    return util::corrupt("shard run: shorter than header: " + path);

  char header[kRunHeaderBytes];
  reader.in_.read(header, kRunHeaderBytes);
  if (!reader.in_) return util::corrupt("shard run: header read failed: " + path);
  std::uint32_t crc = 0;
  if (auto s = decode_header(header, file_size, reader.shard_count_,
                             reader.shard_index_, crc, reader.entry_count_);
      !s.ok())
    return s.error();

  // Validation prescan: checksum + per-entry checks over the whole payload
  // before a single entry is surfaced, so corruption can never reach an
  // aggregate. One buffered pass; entries are not retained.
  reader.buffer_.resize(256 * kRunEntryBytes);
  compress::Crc32 crc_check;
  std::uint64_t prev_key = 0;
  std::uint64_t index = 0;
  std::uint64_t remaining = reader.entry_count_ * kRunEntryBytes;
  while (remaining > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, reader.buffer_.size()));
    reader.in_.read(reader.buffer_.data(),
                    static_cast<std::streamsize>(chunk));
    if (static_cast<std::size_t>(reader.in_.gcount()) != chunk)
      return util::corrupt("shard run: payload read failed: " + path);
    crc_check.update(reader.buffer_.data(), chunk);
    for (std::size_t off = 0; off < chunk; off += kRunEntryBytes, ++index) {
      RunEntry e;
      if (auto s =
              decode_entry(reader.buffer_.data() + off, index, prev_key,
                           reader.shard_count_, reader.shard_index_, e);
          !s.ok())
        return s.error();
      prev_key = e.key;
    }
    remaining -= chunk;
  }
  if (crc_check.value() != crc)
    return util::corrupt("shard run: payload checksum mismatch: " + path);

  // Rewind past the header for the streaming pass.
  reader.in_.clear();
  reader.in_.seekg(static_cast<std::streamoff>(kRunHeaderBytes),
                   std::ios::beg);
  reader.consumed_ = 0;
  reader.buffer_pos_ = 0;
  reader.buffer_len_ = 0;
  return reader;
}

bool RunReader::refill() {
  const std::uint64_t remaining =
      (entry_count_ - consumed_) * kRunEntryBytes;
  if (remaining == 0) return false;
  const std::size_t chunk = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining, buffer_.size()));
  in_.read(buffer_.data(), static_cast<std::streamsize>(chunk));
  if (static_cast<std::size_t>(in_.gcount()) != chunk) return false;
  buffer_pos_ = 0;
  buffer_len_ = chunk;
  return true;
}

bool RunReader::next(RunEntry& out) {
  if (consumed_ >= entry_count_) return false;
  if (buffer_pos_ >= buffer_len_ && !refill()) return false;
  const char* p = buffer_.data() + buffer_pos_;
  // Prescan already validated every slot; decode without re-checking.
  out.key = get_u64(p);
  out.entry.count = get_u64(p + 8);
  out.entry.size = get_u64(p + 16);
  out.entry.first_layer = get_u32(p + 24);
  out.entry.type = static_cast<filetype::Type>(static_cast<std::uint8_t>(p[28]));
  out.entry.multi_layer = (static_cast<std::uint8_t>(p[29]) & 1u) != 0;
  buffer_pos_ += kRunEntryBytes;
  ++consumed_;
  return true;
}

}  // namespace dockmine::shard
