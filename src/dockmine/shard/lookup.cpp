#include "dockmine/shard/lookup.h"

#include <algorithm>
#include <utility>

#include "dockmine/shard/merger.h"

namespace dockmine::shard {

util::Result<ShardSetIndex> ShardSetIndex::open(
    const std::vector<std::string>& dirs) {
  ShardMerger merger;
  for (const std::string& dir : dirs) {
    if (auto added = merger.add_shard_set(dir); !added.ok()) {
      return added.error();
    }
  }
  ShardSetIndex index;
  if (auto merged = merger.merge(
          [&index](std::uint64_t key, const dedup::ContentEntry& entry) {
            index.entries_.push_back({key, entry});
          });
      !merged.ok()) {
    return merged.error();
  }
  index.runs_ = merger.stats().runs;
  return index;
}

const dedup::ContentEntry* ShardSetIndex::find(std::uint64_t key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const RunEntry& entry, std::uint64_t k) { return entry.key < k; });
  if (it == entries_.end() || it->key != key) return nullptr;
  return &it->entry;
}

}  // namespace dockmine::shard
