// Per-(writer, shard) content store behind ShardedDedupIndex: one small
// key->ContentEntry index whose entries must leave in strictly ascending
// key order (the DMSHRUN1 run format requires it).
//
// Two interchangeable backends:
//   kMap  util::FlatMap64 — O(1) upserts, pays an O(n log n) sort inside
//         collect_sorted() every time a run is frozen.
//   kArt  art::Art64 — O(key) upserts, and the in-order walk IS the sorted
//         order, so freezing a run is a single linear pass. This is why
//         sharded_index.cpp contains no std::sort: ordering is the store's
//         contract, not the spill path's job.
//
// Both backends produce byte-identical run files for the same observation
// stream (pinned by shard_test.cpp's spill-equivalence suite). The default
// backend is the ART; set DOCKMINE_SHARD_INDEX=map|art to override, or pin
// Config::backend explicitly in code.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dockmine/art/art.h"
#include "dockmine/dedup/file_dedup.h"
#include "dockmine/shard/run_format.h"
#include "dockmine/util/flat_map.h"

namespace dockmine::shard {

enum class IndexBackend : std::uint8_t {
  kDefault,  ///< resolve from DOCKMINE_SHARD_INDEX, falling back to kArt
  kMap,
  kArt,
};

/// Resolve kDefault against the DOCKMINE_SHARD_INDEX environment variable
/// ("map" or "art"; anything else falls back to kArt). Explicit backends
/// pass through untouched.
IndexBackend resolve_backend(IndexBackend configured) noexcept;

const char* backend_name(IndexBackend backend) noexcept;

class ShardStore {
 public:
  /// `backend` must be concrete (not kDefault); `expected` is the sizing
  /// hint the map backend allocates for and both backends floor spills on.
  ShardStore(IndexBackend backend, std::size_t expected);
  ShardStore(ShardStore&&) = default;
  ShardStore& operator=(ShardStore&&) = default;

  /// Fold one observation into the entry for `key` (which must already be
  /// remapped and nonzero). Returns true when the merge saw a size/type
  /// conflict, mirroring dedup::merge_content_entries.
  bool merge(std::uint64_t key, const dedup::ContentEntry& observation);

  bool empty() const noexcept;
  std::size_t size() const noexcept;

  /// Resident footprint driving spill accounting. Deterministic for a
  /// given observation history on both backends.
  std::uint64_t memory_bytes() const noexcept;

  /// Append every entry to `out` in strictly ascending key order without
  /// mutating the store. The map backend sorts here; the ART walks.
  void collect_sorted(std::vector<RunEntry>& out) const;

  /// Return the store to its freshly-constructed state (map: re-allocated
  /// at the sizing hint, so a grown table does not immediately re-trip the
  /// spill threshold; ART: cleared).
  void reset();

  /// Minimum memory_bytes() worth freezing as a run: ~2x the empty-store
  /// baseline, so near-empty runs are never written however low the
  /// configured spill threshold goes.
  std::uint64_t spill_floor() const noexcept;

  /// Node census for the ART backend; all-zero for the map backend.
  art::Stats art_stats() const;

  IndexBackend backend() const noexcept { return backend_; }

 private:
  IndexBackend backend_;
  std::size_t expected_;
  std::optional<util::FlatMap64<dedup::ContentEntry>> map_;
  std::optional<art::Art64<dedup::ContentEntry>> art_;
};

}  // namespace dockmine::shard
