// On-disk spill run format for the sharded dedup index (dockmine::shard).
//
// A *run* is one shard's partially aggregated content entries, sorted
// strictly ascending by content key, frozen to disk when the shard's
// resident map hits its spill threshold (or when a shard set is exported
// for another node to merge). Runs are immutable once written; the k-way
// ShardMerger folds any number of runs — from this process or from other
// nodes — back into exact aggregates.
//
// Layout (all integers little-endian):
//
//   header, 32 bytes
//     [ 0..8)   magic  "DMSHRUN1" (version baked into the last byte)
//     [ 8..12)  format version, u32 (== kRunVersion)
//     [12..16)  shard_count, u32 (power of two, >= 1)
//     [16..20)  shard_index, u32 (< shard_count)
//     [20..24)  CRC-32 (IEEE) over the entry section, u32
//     [24..32)  entry_count, u64
//   entries, 32 bytes each
//     [ 0..8)   content key, u64 (nonzero; strictly ascending; top
//               log2(shard_count) bits must equal shard_index)
//     [ 8..16)  count, u64 (nonzero)
//     [16..24)  size, u64
//     [24..28)  first_layer, u32
//     [28]      type, u8 (< filetype::kTypeCount)
//     [29]      flags, u8 (bit 0 = multi_layer; other bits must be zero)
//     [30..32)  zero padding
//
// Validation is strict and total: a reader accepts a run only when the
// magic, version, exact file size, CRC, key ordering, partition bounds, and
// every per-entry range check pass. Anything else — truncation, bit flips,
// nonzero padding, stale versions — is rejected with kCorrupt before a
// single entry reaches an aggregate, so a damaged run can fail a merge but
// never skew one.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "dockmine/dedup/file_dedup.h"
#include "dockmine/util/error.h"

namespace dockmine::shard {

inline constexpr std::string_view kRunMagic = "DMSHRUN1";
inline constexpr std::uint32_t kRunVersion = 1;
inline constexpr std::size_t kRunHeaderBytes = 32;
inline constexpr std::size_t kRunEntryBytes = 32;

/// One distinct content's partially aggregated observation, as carried by a
/// run. `entry` has the exact FileDedupIndex semantics; folding run entries
/// for the same key with dedup::merge_content_entries reconstructs the
/// monolithic entry.
struct RunEntry {
  std::uint64_t key = 0;
  dedup::ContentEntry entry;
};

/// Serialize a run to its byte representation. Precondition: `entries` is
/// sorted strictly ascending by key and every key belongs to the
/// (shard_count, shard_index) partition.
std::string encode_run(std::uint32_t shard_count, std::uint32_t shard_index,
                       const std::vector<RunEntry>& entries);

/// Full in-memory decode with complete validation (fuzz/replay surface; the
/// merger streams through RunReader instead).
util::Result<std::vector<RunEntry>> decode_run(std::string_view bytes,
                                               std::uint32_t* shard_count = nullptr,
                                               std::uint32_t* shard_index = nullptr);

/// Write a run file atomically (temp file + rename).
util::Status write_run_file(const std::string& path,
                            std::uint32_t shard_count,
                            std::uint32_t shard_index,
                            const std::vector<RunEntry>& entries);

/// Streaming run reader. open() makes a full validation pass (header, size,
/// CRC, ordering, partition and range checks) without retaining entries,
/// then rewinds; next() streams entries in key order with O(1) memory. A
/// file that opens cleanly cannot fail validation mid-merge.
class RunReader {
 public:
  static util::Result<RunReader> open(const std::string& path);

  /// Pop the next entry; false at end of run.
  bool next(RunEntry& out);

  std::uint32_t shard_count() const noexcept { return shard_count_; }
  std::uint32_t shard_index() const noexcept { return shard_index_; }
  std::uint64_t entry_count() const noexcept { return entry_count_; }
  /// True once every entry has been streamed. next() returning false while
  /// !exhausted() means the file changed or failed under us after the
  /// validation pass — the merger must abort, not under-aggregate.
  bool exhausted() const noexcept { return consumed_ == entry_count_; }
  const std::string& path() const noexcept { return path_; }

 private:
  RunReader() = default;
  bool refill();

  std::string path_;
  std::ifstream in_;
  std::uint32_t shard_count_ = 1;
  std::uint32_t shard_index_ = 0;
  std::uint64_t entry_count_ = 0;
  std::uint64_t consumed_ = 0;
  std::vector<char> buffer_;
  std::size_t buffer_pos_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace dockmine::shard
