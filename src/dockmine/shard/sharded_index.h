// Hash-partitioned, disk-spilling dedup index (the out-of-core / multi-node
// counterpart of dedup::FileDedupIndex).
//
// Content keys route to one of N shards by their top log2(N) bits. Each
// producer thread owns a private Writer holding one small ShardStore per
// shard (FlatMap64 or ART, see store.h), so concurrent routing in the
// streamed pipeline is lock-free: a writer never shares a store with
// another thread, and the only cross-thread traffic is relaxed occupancy
// accounting. When a writer's store for some shard grows past the spill
// threshold, the store is frozen to a sorted, checksummed run file
// (run_format.h) and reset — bounding resident memory per (writer, shard)
// regardless of how many distinct contents flow through. Run entries leave
// the store already in ascending key order (the store's contract); this
// file contains no sort. seal_into() hands every resident store and every
// spilled run to a ShardMerger, whose commutative/associative fold
// reconstructs the exact monolithic aggregates; export_shard_set() instead
// freezes everything to a manifest-described directory another process or
// node can merge later.
//
// Observability (off by default, like all obs instruments):
//   dockmine_shard_occupancy_bytes{shard="K"}  resident bytes per shard
//   dockmine_shard_resident_bytes / _resident_peak_bytes
//   dockmine_shard_spills_total / _spilled_entries_total / _spilled_bytes_total
//   dockmine_art_nodes{kind="4|16|48|256"}     ART node census at seal time
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dockmine/dedup/file_dedup.h"
#include "dockmine/digest/digest.h"
#include "dockmine/filetype/taxonomy.h"
#include "dockmine/obs/obs.h"
#include "dockmine/shard/run_format.h"
#include "dockmine/shard/store.h"
#include "dockmine/util/error.h"

namespace dockmine::shard {

class ShardMerger;

struct Config {
  /// Shard count; 0 disables the sharded backend entirely (pipeline default)
  /// and any other value is rounded up to a power of two.
  std::uint32_t shards = 0;

  /// Spill a writer's per-shard map once its table exceeds this many bytes.
  /// Only meaningful with a spill_dir; an index without one keeps
  /// everything resident (still sharded, still mergeable).
  std::uint64_t spill_threshold_bytes = 64ull << 20;

  /// Directory for spill run files; empty disables spilling.
  std::string spill_dir;

  /// Initial sizing hint for each writer-shard store.
  std::size_t expected_contents_per_shard = 64;

  /// Per-(writer, shard) store implementation. kDefault resolves from the
  /// DOCKMINE_SHARD_INDEX environment variable, falling back to the ART.
  IndexBackend backend = IndexBackend::kDefault;

  bool enabled() const noexcept { return shards != 0; }
  bool spill_enabled() const noexcept {
    return !spill_dir.empty() && spill_threshold_bytes > 0;
  }
};

struct SpillStats {
  std::uint64_t spills = 0;
  std::uint64_t spilled_entries = 0;
  std::uint64_t spilled_bytes = 0;        ///< run-file bytes written
  std::uint64_t resident_bytes = 0;       ///< current table bytes, all shards
  std::uint64_t peak_resident_bytes = 0;  ///< high-water mark of the above
};

class ShardedDedupIndex {
 public:
  explicit ShardedDedupIndex(Config config);
  ShardedDedupIndex(const ShardedDedupIndex&) = delete;
  ShardedDedupIndex& operator=(const ShardedDedupIndex&) = delete;

  /// A single thread's routing front-end. Obtain via local_writer(); never
  /// share across threads.
  class Writer {
   public:
    /// Observe one file instance (mirrors FileDedupIndex::add).
    void add(std::uint64_t content_key, std::uint64_t size,
             filetype::Type type, std::uint32_t layer_index);

    void add(const digest::Digest& digest, std::uint64_t size,
             filetype::Type type, std::uint32_t layer_index) {
      add(digest.key64(), size, type, layer_index);
    }

   private:
    friend class ShardedDedupIndex;
    explicit Writer(ShardedDedupIndex* owner);

    void track(std::uint32_t shard);
    void spill(std::uint32_t shard, const std::string& dir);

    ShardedDedupIndex* owner_;
    std::vector<ShardStore> stores_;
    std::vector<std::uint64_t> tracked_bytes_;  ///< last memory pushed to owner
    std::uint64_t observations_ = 0;
    std::uint64_t conflicts_ = 0;
  };

  /// The calling thread's writer for THIS index instance, created on first
  /// use. Keyed by a process-unique generation id, so a stale thread-local
  /// slot from a destroyed index can never alias a new one.
  Writer& local_writer();

  /// Partition for an (already remapped, nonzero) key: top log2(shards) bits.
  std::uint32_t shard_of(std::uint64_t key) const noexcept {
    return shift_ == 64 ? 0u : static_cast<std::uint32_t>(key >> shift_);
  }

  /// Flush every resident map and hand all runs (memory + spilled files) to
  /// `merger`. Call after all producer threads have quiesced. Reports the
  /// first spill-write failure, if any occurred during the run.
  util::Status seal_into(ShardMerger& merger);

  /// Freeze the full index state into `dir`: every resident map becomes a
  /// run file there, previously spilled runs are referenced, and a
  /// `shardset.json` manifest describes the set. Returns the manifest path.
  /// Like seal_into, requires quiesced producers; the index is empty after.
  util::Result<std::string> export_shard_set(const std::string& dir);

  SpillStats stats() const;
  /// Size/type conflicts observed by writers so far (quiesced threads only).
  std::uint64_t metadata_conflicts() const;
  std::uint64_t observations() const;
  /// Aggregate ART node census across all writers (all-zero for the map
  /// backend). Quiesced producers only.
  art::Stats art_stats() const;
  const Config& config() const noexcept { return config_; }
  std::uint32_t shards() const noexcept { return config_.shards; }
  /// The resolved (concrete) store backend.
  IndexBackend backend() const noexcept { return config_.backend; }
  /// Effective minimum store footprint before a spill triggers, whatever
  /// the configured threshold says.
  std::uint64_t spill_floor() const noexcept { return spill_floor_; }

 private:
  struct RunFile {
    std::string path;
    std::uint32_t shard = 0;
    std::uint64_t entries = 0;
  };

  void on_occupancy_delta(std::uint32_t shard, std::int64_t delta);
  std::string next_run_path(const std::string& dir, std::uint32_t shard);
  void record_run(RunFile run, std::uint64_t file_bytes);
  void record_spill_error(util::Error error);
  bool spill_disabled() const noexcept {
    return spill_failed_.load(std::memory_order_relaxed);
  }
  /// Flush every writer's resident stores as run files into `dir`.
  util::Status flush_residents_to(const std::string& dir);
  /// Publish the ART node census to the obs gauges (writers_mutex_ held).
  void publish_art_census_locked();

  Config config_;
  std::uint32_t shift_ = 64;       ///< 64 - log2(shards); 64 means 1 shard
  std::uint64_t generation_ = 0;   ///< process-unique instance id
  std::uint64_t spill_floor_ = 0;  ///< min store bytes before a spill triggers

  mutable std::mutex writers_mutex_;
  std::vector<std::unique_ptr<Writer>> writers_;

  mutable std::mutex runs_mutex_;
  std::vector<RunFile> runs_;
  util::Error spill_error_;
  bool has_spill_error_ = false;
  std::atomic<bool> spill_failed_{false};
  std::atomic<std::uint64_t> run_seq_{0};

  std::unique_ptr<std::atomic<std::int64_t>[]> occupancy_;
  std::atomic<std::int64_t> resident_bytes_{0};
  std::atomic<std::int64_t> peak_resident_bytes_{0};
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<std::uint64_t> spilled_entries_{0};
  std::atomic<std::uint64_t> spilled_bytes_{0};

  std::vector<obs::Gauge*> occupancy_gauges_;
  std::array<obs::Gauge*, 4> art_node_gauges_{};  ///< kind 4/16/48/256
  obs::Gauge* art_keys_gauge_ = nullptr;
  obs::Gauge* resident_gauge_ = nullptr;
  obs::Gauge* peak_gauge_ = nullptr;
  obs::Counter* spill_counter_ = nullptr;
  obs::Counter* spilled_entries_counter_ = nullptr;
  obs::Counter* spilled_bytes_counter_ = nullptr;
};

}  // namespace dockmine::shard
