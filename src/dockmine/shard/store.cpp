#include "dockmine/shard/store.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace dockmine::shard {

IndexBackend resolve_backend(IndexBackend configured) noexcept {
  if (configured != IndexBackend::kDefault) return configured;
  if (const char* env = std::getenv("DOCKMINE_SHARD_INDEX")) {
    if (std::strcmp(env, "map") == 0) return IndexBackend::kMap;
  }
  return IndexBackend::kArt;
}

const char* backend_name(IndexBackend backend) noexcept {
  switch (backend) {
    case IndexBackend::kDefault: return "default";
    case IndexBackend::kMap: return "map";
    case IndexBackend::kArt: return "art";
  }
  return "?";
}

ShardStore::ShardStore(IndexBackend backend, std::size_t expected)
    : backend_(backend), expected_(expected == 0 ? 64 : expected) {
  if (backend_ == IndexBackend::kMap) {
    map_.emplace(expected_);
  } else {
    art_.emplace();
  }
}

bool ShardStore::merge(std::uint64_t key,
                       const dedup::ContentEntry& observation) {
  dedup::ContentEntry& entry = map_ ? (*map_)[key] : (*art_)[key];
  return dedup::merge_content_entries(entry, observation);
}

bool ShardStore::empty() const noexcept {
  return map_ ? map_->empty() : art_->empty();
}

std::size_t ShardStore::size() const noexcept {
  return map_ ? map_->size() : art_->size();
}

std::uint64_t ShardStore::memory_bytes() const noexcept {
  return map_ ? map_->memory_bytes() : art_->memory_bytes();
}

void ShardStore::collect_sorted(std::vector<RunEntry>& out) const {
  out.reserve(out.size() + size());
  if (map_) {
    const std::size_t first = out.size();
    map_->for_each([&](std::uint64_t key, const dedup::ContentEntry& entry) {
      out.push_back(RunEntry{key, entry});
    });
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const RunEntry& a, const RunEntry& b) { return a.key < b.key; });
    return;
  }
  art_->for_each([&](std::uint64_t key, const dedup::ContentEntry& entry) {
    out.push_back(RunEntry{key, entry});
  });
}

void ShardStore::reset() {
  if (map_) {
    // Re-allocate at the sizing hint: clear() would keep the grown table
    // and immediately re-trip the spill threshold.
    map_.emplace(expected_);
  } else {
    art_->clear();
  }
}

std::uint64_t ShardStore::spill_floor() const noexcept {
  if (map_) {
    // An empty map already owns its table; anything below ~2x that would
    // freeze near-empty runs on every add.
    return 2 * util::FlatMap64<dedup::ContentEntry>(expected_).memory_bytes();
  }
  // The empty ART owns no nodes (memory_bytes() == 0), so floor on what
  // `expected_` resident keys cost instead. Using the ART's own per-key
  // estimate keeps run entry counts comparable to the map backend's — a
  // floor priced in RunEntry bytes would spill ~5x more often (ART nodes
  // are several times larger than a serialized entry) and drown the merger
  // in tiny runs.
  return 2 * expected_ *
         art::Art64<dedup::ContentEntry>::approx_bytes_per_key();
}

art::Stats ShardStore::art_stats() const {
  return art_ ? art_->stats() : art::Stats{};
}

}  // namespace dockmine::shard
