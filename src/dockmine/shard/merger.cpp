#include "dockmine/shard/merger.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dockmine/json/json.h"
#include "dockmine/obs/obs.h"

namespace dockmine::shard {
namespace {

struct MergerMetrics {
  obs::Counter& runs = obs::Registry::global().counter(
      "dockmine_shard_merge_runs_total");
  obs::Counter& entries = obs::Registry::global().counter(
      "dockmine_shard_merge_entries_total");
  obs::Counter& corrupt = obs::Registry::global().counter(
      "dockmine_shard_merge_corrupt_runs_total");
  obs::Histogram& wait_ms = obs::Registry::global().histogram(
      "dockmine_shard_merge_wait_ms");
};

MergerMetrics& metrics() {
  static MergerMetrics m;
  return m;
}

}  // namespace

bool ShardMerger::Source::advance() {
  if (reader) return reader->next(head);
  if (cursor >= memory.size()) return false;
  head = memory[cursor++];
  return true;
}

ShardMerger::ShardMerger() = default;

void ShardMerger::add_memory_run(std::vector<RunEntry> entries) {
  if (entries.empty()) return;
  Source source;
  source.memory = std::move(entries);
  sources_.push_back(std::move(source));
  ++stats_.runs;
  metrics().runs.add();
}

util::Status ShardMerger::add_run_file(const std::string& path) {
  auto reader = RunReader::open(path);
  if (!reader.ok()) {
    metrics().corrupt.add();
    return reader.error();
  }
  Source source;
  source.reader =
      std::make_unique<RunReader>(std::move(reader).value());
  sources_.push_back(std::move(source));
  ++stats_.runs;
  ++stats_.file_runs;
  metrics().runs.add();
  return util::Status::success();
}

util::Status ShardMerger::add_shard_set(const std::string& dir) {
  const std::filesystem::path root(dir);
  const std::filesystem::path manifest_path = root / kShardSetManifest;
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in)
    return util::not_found("shard set: no manifest at " +
                           manifest_path.string());
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = json::parse(text.str());
  if (!doc.ok())
    return util::corrupt("shard set: bad manifest JSON at " +
                         manifest_path.string() + ": " +
                         doc.error().message());
  const json::Value& manifest = doc.value();
  if (manifest["format"].as_string() != "dockmine-shardset")
    return util::corrupt("shard set: unrecognized manifest format");
  if (manifest["version"].as_int() != 1)
    return util::corrupt("shard set: unsupported manifest version");
  if (!manifest["runs"].is_array())
    return util::corrupt("shard set: manifest has no runs array");
  for (const json::Value& run : manifest["runs"].items()) {
    const std::string& file = run["file"].as_string();
    std::filesystem::path path(file);
    if (path.is_relative()) path = root / path;
    const std::size_t before = sources_.size();
    if (auto s = add_run_file(path.string()); !s.ok()) return s;
    // Cross-check the manifest's own claim against the validated header.
    if (run.contains("entries") &&
        sources_[before].reader->entry_count() != run["entries"].as_uint())
      return util::corrupt("shard set: manifest entry count mismatch for " +
                           path.string());
  }
  return util::Status::success();
}

util::Status ShardMerger::merge(
    const std::function<void(std::uint64_t, const dedup::ContentEntry&)>&
        visit) {
  if (consumed_)
    return util::internal("shard merger: merge() may only run once");
  consumed_ = true;
  obs::Timer timer;

  // Min-heap of source indices keyed by each source's current head key.
  const auto later = [this](std::size_t a, std::size_t b) {
    return sources_[a].head.key > sources_[b].head.key;
  };
  std::vector<std::size_t> heap;
  heap.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].advance()) {
      heap.push_back(i);
    } else if (sources_[i].reader && !sources_[i].reader->exhausted()) {
      return util::corrupt("shard merge: read failed in " +
                           sources_[i].reader->path());
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);

  const auto pop_min = [&]() {
    std::pop_heap(heap.begin(), heap.end(), later);
    const std::size_t index = heap.back();
    heap.pop_back();
    return index;
  };
  const auto reinsert = [&](std::size_t index) -> util::Status {
    Source& source = sources_[index];
    if (source.advance()) {
      heap.push_back(index);
      std::push_heap(heap.begin(), heap.end(), later);
    } else if (source.reader && !source.reader->exhausted()) {
      return util::corrupt("shard merge: read failed in " +
                           source.reader->path());
    }
    return util::Status::success();
  };

  while (!heap.empty()) {
    std::size_t index = pop_min();
    const std::uint64_t key = sources_[index].head.key;
    dedup::ContentEntry folded = sources_[index].head.entry;
    ++stats_.entries_read;
    if (auto s = reinsert(index); !s.ok()) return s;
    while (!heap.empty() && sources_[heap.front()].head.key == key) {
      index = pop_min();
      if (dedup::merge_content_entries(folded, sources_[index].head.entry))
        ++stats_.metadata_conflicts;
      ++stats_.entries_read;
      if (auto s = reinsert(index); !s.ok()) return s;
    }
    ++stats_.distinct_contents;
    visit(key, folded);
  }

  metrics().entries.add(stats_.entries_read);
  metrics().wait_ms.observe(timer.ms());
  return util::Status::success();
}

util::Result<MergedAggregates> ShardMerger::merge_aggregates() {
  MergedAggregates out;
  auto status = merge([&](std::uint64_t, const dedup::ContentEntry& entry) {
    out.totals.total_files += entry.count;
    out.totals.total_bytes += entry.count * entry.size;
    out.totals.unique_files += 1;
    out.totals.unique_bytes += entry.size;
    out.repeat_counts.add(static_cast<double>(entry.count));
    out.by_type.observe(entry);
    if (entry.count > out.max_repeat.count) out.max_repeat = entry;
  });
  if (!status.ok()) return status.error();
  out.by_type.finalize();
  out.distinct_contents = stats_.distinct_contents;
  out.metadata_conflicts = stats_.metadata_conflicts;
  return out;
}

util::Result<dedup::FileDedupIndex> ShardMerger::merge_to_index(
    std::size_t expected_contents) {
  dedup::FileDedupIndex index(expected_contents);
  auto status = merge([&](std::uint64_t key, const dedup::ContentEntry& entry) {
    index.insert_entry(key, entry);
  });
  if (!status.ok()) return status.error();
  return index;
}

}  // namespace dockmine::shard
