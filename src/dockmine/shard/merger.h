// K-way merger folding shard runs — resident memory runs, spilled run
// files, or whole exported shard sets from other nodes — back into the
// exact aggregates the monolithic FileDedupIndex would produce.
//
// Every run is individually sorted by content key, so a single global heap
// merge visits each distinct content once, in ascending key order,
// regardless of how many shards, spills, nodes, or merge orderings produced
// the runs. Per-key folding uses dedup::merge_content_entries, which is
// commutative and associative; together these make the merged totals,
// repeat-count multiset, and by-type breakdown byte-identical to the
// monolithic index under ANY partitioning of the observation stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dockmine/dedup/by_type.h"
#include "dockmine/dedup/file_dedup.h"
#include "dockmine/shard/run_format.h"
#include "dockmine/stats/cdf.h"
#include "dockmine/util/error.h"

namespace dockmine::shard {

/// Name of the manifest written next to exported run files.
inline constexpr std::string_view kShardSetManifest = "shardset.json";

/// Everything the analysis report needs from the dedup index, computed in
/// one streaming pass — the full index is never resident.
struct MergedAggregates {
  dedup::DedupTotals totals;
  stats::Ecdf repeat_counts;       ///< one sample per distinct content
  dedup::TypeBreakdown by_type;    ///< finalized
  dedup::ContentEntry max_repeat;
  std::uint64_t distinct_contents = 0;
  std::uint64_t metadata_conflicts = 0;  ///< conflicts seen during the fold
};

class ShardMerger {
 public:
  ShardMerger();

  /// Add a resident run (entries sorted strictly ascending by key).
  void add_memory_run(std::vector<RunEntry> entries);

  /// Add a spilled/exported run file. The file is fully validated here
  /// (header, size, checksum, ordering, ranges) before it can contribute a
  /// single entry; a corrupt file fails the add and taints the merger.
  util::Status add_run_file(const std::string& path);

  /// Add every run listed in `dir`/shardset.json (an exported shard set,
  /// e.g. from another node).
  util::Status add_shard_set(const std::string& dir);

  struct Stats {
    std::uint64_t runs = 0;            ///< memory + file runs
    std::uint64_t file_runs = 0;
    std::uint64_t entries_read = 0;    ///< pre-fold run entries
    std::uint64_t distinct_contents = 0;
    std::uint64_t metadata_conflicts = 0;
  };

  /// One-shot k-way merge: visit(key, folded_entry) per distinct content in
  /// ascending key order. Consumes the sources.
  util::Status merge(
      const std::function<void(std::uint64_t, const dedup::ContentEntry&)>&
          visit);

  /// merge() + the standard report aggregations in one pass.
  util::Result<MergedAggregates> merge_aggregates();

  /// merge() into a resident FileDedupIndex — for callers that need point
  /// lookups afterwards (cross-duplicate analysis, equivalence tests).
  util::Result<dedup::FileDedupIndex> merge_to_index(
      std::size_t expected_contents = 1 << 16);

  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Source {
    std::vector<RunEntry> memory;
    std::size_t cursor = 0;
    std::unique_ptr<RunReader> reader;
    RunEntry head;

    /// Load the next entry into `head`; false when drained.
    bool advance();
  };

  std::vector<Source> sources_;
  Stats stats_;
  bool consumed_ = false;
};

}  // namespace dockmine::shard
