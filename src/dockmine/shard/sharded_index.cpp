#include "dockmine/shard/sharded_index.h"

#include <algorithm>
#include <filesystem>

#include "dockmine/json/json.h"
#include "dockmine/shard/merger.h"

namespace dockmine::shard {
namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint32_t log2_of(std::uint32_t v) {
  std::uint32_t bits = 0;
  while ((1u << bits) < v) ++bits;
  return bits;
}

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ShardedDedupIndex::ShardedDedupIndex(Config config)
    : config_(std::move(config)), generation_(next_generation()) {
  config_.shards = round_up_pow2(std::max(config_.shards, 1u));
  shift_ = config_.shards == 1 ? 64u : 64u - log2_of(config_.shards);
  if (config_.expected_contents_per_shard == 0)
    config_.expected_contents_per_shard = 64;
  config_.backend = resolve_backend(config_.backend);

  // Spilling below ~2x an empty store's baseline would freeze near-empty
  // runs on every add. Lift the effective threshold to keep each run worth
  // its header.
  const ShardStore probe(config_.backend, config_.expected_contents_per_shard);
  spill_floor_ = probe.spill_floor();

  if (config_.spill_enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.spill_dir, ec);
    if (ec) {
      // Same degradation as a failed spill write: data stays resident (still
      // correct, just unbounded) and seal_into reports the error.
      record_spill_error(util::internal("shard spill: cannot create directory " +
                                        config_.spill_dir));
    }
  }

  occupancy_ =
      std::make_unique<std::atomic<std::int64_t>[]>(config_.shards);
  for (std::uint32_t s = 0; s < config_.shards; ++s) occupancy_[s] = 0;

  auto& registry = obs::Registry::global();
  occupancy_gauges_.reserve(config_.shards);
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    occupancy_gauges_.push_back(
        &registry.gauge("dockmine_shard_occupancy_bytes{shard=\"" +
                        std::to_string(s) + "\"}"));
  }
  for (std::size_t i = 0; i < art_node_gauges_.size(); ++i) {
    static constexpr const char* kKinds[] = {"4", "16", "48", "256"};
    art_node_gauges_[i] = &registry.gauge(
        std::string("dockmine_art_nodes{kind=\"") + kKinds[i] + "\"}");
  }
  art_keys_gauge_ = &registry.gauge("dockmine_art_keys");
  resident_gauge_ = &registry.gauge("dockmine_shard_resident_bytes");
  peak_gauge_ = &registry.gauge("dockmine_shard_resident_peak_bytes");
  spill_counter_ = &registry.counter("dockmine_shard_spills_total");
  spilled_entries_counter_ =
      &registry.counter("dockmine_shard_spilled_entries_total");
  spilled_bytes_counter_ =
      &registry.counter("dockmine_shard_spilled_bytes_total");
}

ShardedDedupIndex::Writer::Writer(ShardedDedupIndex* owner) : owner_(owner) {
  const std::uint32_t shards = owner_->config_.shards;
  stores_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    stores_.emplace_back(owner_->config_.backend,
                         owner_->config_.expected_contents_per_shard);
  }
  tracked_bytes_.assign(shards, 0);
  for (std::uint32_t s = 0; s < shards; ++s) track(s);
}

void ShardedDedupIndex::Writer::add(std::uint64_t content_key,
                                    std::uint64_t size, filetype::Type type,
                                    std::uint32_t layer_index) {
  const std::uint64_t key = dedup::FileDedupIndex::remap_key(content_key);
  const std::uint32_t shard = owner_->shard_of(key);
  dedup::ContentEntry observation;
  observation.count = 1;
  observation.size = size;
  observation.type = type;
  observation.first_layer = layer_index;
  if (stores_[shard].merge(key, observation)) ++conflicts_;
  ++observations_;
  track(shard);
}

void ShardedDedupIndex::Writer::track(std::uint32_t shard) {
  const std::uint64_t now = stores_[shard].memory_bytes();
  if (now != tracked_bytes_[shard]) {
    owner_->on_occupancy_delta(
        shard, static_cast<std::int64_t>(now) -
                   static_cast<std::int64_t>(tracked_bytes_[shard]));
    tracked_bytes_[shard] = now;
  }
  if (owner_->config_.spill_enabled() && !owner_->spill_disabled() &&
      now >= std::max(owner_->config_.spill_threshold_bytes,
                      owner_->spill_floor_) &&
      !stores_[shard].empty()) {
    spill(shard, owner_->config_.spill_dir);
  }
}

void ShardedDedupIndex::Writer::spill(std::uint32_t shard,
                                      const std::string& dir) {
  ShardStore& store = stores_[shard];
  std::vector<RunEntry> entries;
  store.collect_sorted(entries);  // already ascending — the store's contract

  const std::string path = owner_->next_run_path(dir, shard);
  if (auto s = write_run_file(path, owner_->config_.shards, shard, entries);
      !s.ok()) {
    // Keep the store resident — the data is still correct, just not bounded.
    owner_->record_spill_error(s.error());
    return;
  }
  const std::uint64_t file_bytes =
      kRunHeaderBytes + entries.size() * kRunEntryBytes;
  owner_->record_run(RunFile{path, shard, entries.size()}, file_bytes);

  store.reset();
  track(shard);
}

ShardedDedupIndex::Writer& ShardedDedupIndex::local_writer() {
  thread_local std::vector<std::pair<std::uint64_t, Writer*>> cache;
  for (const auto& [generation, writer] : cache) {
    if (generation == generation_) return *writer;
  }
  auto owned = std::unique_ptr<Writer>(new Writer(this));
  Writer* writer = owned.get();
  {
    std::lock_guard<std::mutex> lock(writers_mutex_);
    writers_.push_back(std::move(owned));
  }
  // Bound the cache: stale generations are just re-created on next use, so
  // evicting them is always safe.
  if (cache.size() >= 16) {
    cache.erase(std::remove_if(cache.begin(), cache.end(),
                               [&](const auto& slot) {
                                 return slot.first != generation_;
                               }),
                cache.end());
  }
  cache.emplace_back(generation_, writer);
  return *writer;
}

void ShardedDedupIndex::on_occupancy_delta(std::uint32_t shard,
                                           std::int64_t delta) {
  const std::int64_t shard_now =
      occupancy_[shard].fetch_add(delta, std::memory_order_relaxed) + delta;
  occupancy_gauges_[shard]->set(shard_now);
  const std::int64_t total =
      resident_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  resident_gauge_->set(total);
  std::int64_t peak = peak_resident_bytes_.load(std::memory_order_relaxed);
  while (total > peak && !peak_resident_bytes_.compare_exchange_weak(
                             peak, total, std::memory_order_relaxed)) {
  }
  peak_gauge_->set(peak_resident_bytes_.load(std::memory_order_relaxed));
}

std::string ShardedDedupIndex::next_run_path(const std::string& dir,
                                             std::uint32_t shard) {
  const std::uint64_t seq = run_seq_.fetch_add(1, std::memory_order_relaxed);
  return (std::filesystem::path(dir) /
          ("shard-" + std::to_string(shard) + "-run-" + std::to_string(seq) +
           ".dmrun"))
      .string();
}

void ShardedDedupIndex::record_run(RunFile run, std::uint64_t file_bytes) {
  spills_.fetch_add(1, std::memory_order_relaxed);
  spilled_entries_.fetch_add(run.entries, std::memory_order_relaxed);
  spilled_bytes_.fetch_add(file_bytes, std::memory_order_relaxed);
  spill_counter_->add();
  spilled_entries_counter_->add(run.entries);
  spilled_bytes_counter_->add(file_bytes);
  std::lock_guard<std::mutex> lock(runs_mutex_);
  runs_.push_back(std::move(run));
}

void ShardedDedupIndex::record_spill_error(util::Error error) {
  spill_failed_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(runs_mutex_);
  if (!has_spill_error_) {
    spill_error_ = std::move(error);
    has_spill_error_ = true;
  }
}

util::Status ShardedDedupIndex::seal_into(ShardMerger& merger) {
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    if (has_spill_error_) return spill_error_;
  }
  std::lock_guard<std::mutex> lock(writers_mutex_);
  publish_art_census_locked();
  for (const auto& writer : writers_) {
    for (std::uint32_t s = 0; s < config_.shards; ++s) {
      const ShardStore& store = writer->stores_[s];
      if (store.empty()) continue;
      std::vector<RunEntry> entries;
      store.collect_sorted(entries);
      merger.add_memory_run(std::move(entries));
    }
  }
  std::lock_guard<std::mutex> runs_lock(runs_mutex_);
  for (const RunFile& run : runs_) {
    if (auto s = merger.add_run_file(run.path); !s.ok()) return s;
  }
  return util::Status::success();
}

util::Status ShardedDedupIndex::flush_residents_to(const std::string& dir) {
  std::lock_guard<std::mutex> lock(writers_mutex_);
  publish_art_census_locked();
  for (const auto& writer : writers_) {
    for (std::uint32_t s = 0; s < config_.shards; ++s) {
      if (writer->stores_[s].empty()) continue;
      writer->spill(s, dir);
    }
  }
  std::lock_guard<std::mutex> runs_lock(runs_mutex_);
  if (has_spill_error_) return spill_error_;
  return util::Status::success();
}

util::Result<std::string> ShardedDedupIndex::export_shard_set(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    return util::internal("shard export: cannot create directory " + dir);
  if (auto s = flush_residents_to(dir); !s.ok()) return s.error();

  json::Value manifest = json::Value::object();
  manifest.set("format", "dockmine-shardset");
  manifest.set("version", 1);
  manifest.set("shard_count", static_cast<std::uint64_t>(config_.shards));
  json::Value runs = json::Value::array();
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    for (const RunFile& run : runs_) {
      json::Value entry = json::Value::object();
      const std::filesystem::path path(run.path);
      entry.set("file", path.parent_path() == std::filesystem::path(dir)
                            ? path.filename().string()
                            : run.path);
      entry.set("shard", static_cast<std::uint64_t>(run.shard));
      entry.set("entries", run.entries);
      runs.push_back(std::move(entry));
    }
  }
  manifest.set("runs", std::move(runs));

  const std::string manifest_path =
      (std::filesystem::path(dir) / std::string(kShardSetManifest)).string();
  std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
  if (!out)
    return util::internal("shard export: cannot write " + manifest_path);
  out << manifest.dump_pretty() << "\n";
  out.flush();
  if (!out)
    return util::internal("shard export: short write to " + manifest_path);
  return manifest_path;
}

SpillStats ShardedDedupIndex::stats() const {
  SpillStats out;
  out.spills = spills_.load(std::memory_order_relaxed);
  out.spilled_entries = spilled_entries_.load(std::memory_order_relaxed);
  out.spilled_bytes = spilled_bytes_.load(std::memory_order_relaxed);
  const std::int64_t resident =
      resident_bytes_.load(std::memory_order_relaxed);
  out.resident_bytes =
      resident > 0 ? static_cast<std::uint64_t>(resident) : 0;
  const std::int64_t peak =
      peak_resident_bytes_.load(std::memory_order_relaxed);
  out.peak_resident_bytes = peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
  return out;
}

std::uint64_t ShardedDedupIndex::metadata_conflicts() const {
  std::lock_guard<std::mutex> lock(writers_mutex_);
  std::uint64_t total = 0;
  for (const auto& writer : writers_) total += writer->conflicts_;
  return total;
}

std::uint64_t ShardedDedupIndex::observations() const {
  std::lock_guard<std::mutex> lock(writers_mutex_);
  std::uint64_t total = 0;
  for (const auto& writer : writers_) total += writer->observations_;
  return total;
}

art::Stats ShardedDedupIndex::art_stats() const {
  std::lock_guard<std::mutex> lock(writers_mutex_);
  art::Stats total;
  for (const auto& writer : writers_) {
    for (const ShardStore& store : writer->stores_) {
      total += store.art_stats();
    }
  }
  return total;
}

void ShardedDedupIndex::publish_art_census_locked() {
  art::Stats total;
  for (const auto& writer : writers_) {
    for (const ShardStore& store : writer->stores_) {
      total += store.art_stats();
    }
  }
  art_node_gauges_[0]->set(static_cast<std::int64_t>(total.node4));
  art_node_gauges_[1]->set(static_cast<std::int64_t>(total.node16));
  art_node_gauges_[2]->set(static_cast<std::int64_t>(total.node48));
  art_node_gauges_[3]->set(static_cast<std::int64_t>(total.node256));
  art_keys_gauge_->set(static_cast<std::int64_t>(total.values));
}

}  // namespace dockmine::shard
