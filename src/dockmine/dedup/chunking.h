// Sub-file deduplication — an extension beyond the paper's file-level
// analysis (§V-B), answering the natural follow-up: how much more space
// would chunk-level dedup reclaim, and at what index cost?
//
// Two chunkers:
//  * FixedChunker     — straight N-byte blocks.
//  * GearChunker      — content-defined chunking with a gear rolling hash
//                       (FastCDC-style), so insertions shift boundaries
//                       only locally and shared regions still align.
// Plus ChunkDedupIndex, a byte-level dedup counter with index-overhead
// accounting (bench_ext_chunking compares the three levels).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "dockmine/util/flat_map.h"

namespace dockmine::dedup {

/// Chunk boundaries as (offset, size) pairs covering the whole input.
struct Chunk {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

class FixedChunker {
 public:
  explicit FixedChunker(std::uint64_t chunk_size) : size_(chunk_size) {}
  std::vector<Chunk> chunk(std::string_view content) const;

 private:
  std::uint64_t size_;
};

/// Gear-hash CDC: a boundary is declared where the rolling hash has
/// `mask` low bits clear, bounded by [min, max] chunk sizes.
/// Average chunk size ~= 2^mask_bits + min.
class GearChunker {
 public:
  explicit GearChunker(std::uint64_t average_size);

  std::vector<Chunk> chunk(std::string_view content) const;

  std::uint64_t min_size() const noexcept { return min_; }
  std::uint64_t max_size() const noexcept { return max_; }

 private:
  std::uint64_t min_;
  std::uint64_t max_;
  std::uint64_t mask_;
};

/// Byte-level dedup accounting over chunk digests (64-bit keys from
/// SHA-256 prefixes or any uniform hash).
class ChunkDedupIndex {
 public:
  void add(std::uint64_t chunk_key, std::uint64_t size);

  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t unique_bytes() const noexcept { return unique_bytes_; }
  std::uint64_t total_chunks() const noexcept { return total_chunks_; }
  std::uint64_t unique_chunks() const noexcept { return chunks_.size(); }

  double capacity_ratio() const noexcept {
    return unique_bytes_ == 0 ? 1.0
                              : static_cast<double>(total_bytes_) /
                                    static_cast<double>(unique_bytes_);
  }
  /// Bytes of index metadata per stored unique chunk (key + size + refs),
  /// the cost side of finer-grained dedup.
  static constexpr std::uint64_t kIndexEntryBytes = 48;
  std::uint64_t index_overhead_bytes() const noexcept {
    return unique_chunks() * kIndexEntryBytes;
  }

 private:
  util::FlatMap64<std::uint32_t> chunks_;  // key -> refcount
  std::uint64_t total_bytes_ = 0;
  std::uint64_t unique_bytes_ = 0;
  std::uint64_t total_chunks_ = 0;
};

}  // namespace dockmine::dedup
