// Dedup-ratio growth (paper §V-C, Fig. 25): deduplication measured on
// random samples of increasing size drawn from the dataset — "the
// deduplication ratio increases almost linearly with the layer dataset
// size", 3.6x -> 31.5x (count) and 1.9x -> 6.9x (capacity) from 1,000 to
// 1.7M layers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dockmine/dedup/file_dedup.h"

namespace dockmine::dedup {

struct GrowthPoint {
  std::uint64_t sample_layers = 0;
  DedupTotals totals;
};

/// For each requested sample size, draw that many distinct layers uniformly
/// (Floyd sampling), stream their files into a fresh index, and record the
/// resulting totals. `stream_layer(layer_ordinal, dense_index, index)` must
/// add every file of the dataset's `layer_ordinal`-th unique layer, tagging
/// observations with `dense_index`.
std::vector<GrowthPoint> dedup_growth(
    std::uint64_t n_layers, std::span<const std::uint64_t> sample_sizes,
    const std::function<void(std::uint64_t layer_ordinal,
                             std::uint32_t dense_index, FileDedupIndex& index)>&
        stream_layer,
    std::uint64_t seed);

}  // namespace dockmine::dedup
