#include "dockmine/dedup/chunking.h"

#include <algorithm>

#include "dockmine/util/rng.h"

namespace dockmine::dedup {

std::vector<Chunk> FixedChunker::chunk(std::string_view content) const {
  std::vector<Chunk> chunks;
  if (size_ == 0) return chunks;
  chunks.reserve(content.size() / size_ + 1);
  std::uint64_t offset = 0;
  while (offset < content.size()) {
    const std::uint64_t take =
        std::min<std::uint64_t>(size_, content.size() - offset);
    chunks.push_back(Chunk{offset, take});
    offset += take;
  }
  return chunks;
}

namespace {

/// 256-entry gear table: deterministic pseudo-random 64-bit words.
struct GearTable {
  std::uint64_t g[256];
  GearTable() {
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
    for (auto& word : g) word = util::splitmix64(seed);
  }
};
const GearTable kGear;

}  // namespace

GearChunker::GearChunker(std::uint64_t average_size) {
  average_size = std::max<std::uint64_t>(64, average_size);
  min_ = average_size / 4;
  max_ = average_size * 4;
  // mask with log2(average - min) low bits set: boundary prob per byte is
  // 1/2^bits once past min, giving ~average chunks.
  std::uint64_t bits = 0;
  while ((1ULL << (bits + 1)) <= average_size - min_) ++bits;
  mask_ = (1ULL << bits) - 1;
}

std::vector<Chunk> GearChunker::chunk(std::string_view content) const {
  std::vector<Chunk> chunks;
  std::uint64_t start = 0;
  while (start < content.size()) {
    const std::uint64_t remaining = content.size() - start;
    if (remaining <= min_) {
      chunks.push_back(Chunk{start, remaining});
      break;
    }
    std::uint64_t hash = 0;
    const std::uint64_t limit = std::min<std::uint64_t>(remaining, max_);
    std::uint64_t cut = limit;
    for (std::uint64_t i = 0; i < limit; ++i) {
      hash = (hash << 1) +
             kGear.g[static_cast<unsigned char>(content[start + i])];
      if (i >= min_ && (hash & mask_) == 0) {
        cut = i + 1;
        break;
      }
    }
    chunks.push_back(Chunk{start, cut});
    start += cut;
  }
  return chunks;
}

void ChunkDedupIndex::add(std::uint64_t chunk_key, std::uint64_t size) {
  if (chunk_key == 0) chunk_key = 0x9e3779b97f4a7c15ULL;
  ++total_chunks_;
  total_bytes_ += size;
  std::uint32_t& refs = chunks_[chunk_key];
  if (refs == 0) unique_bytes_ += size;
  ++refs;
}

}  // namespace dockmine::dedup
