#include "dockmine/dedup/file_dedup.h"

#include <algorithm>

namespace dockmine::dedup {

void FileDedupIndex::add(std::uint64_t content_key, std::uint64_t size,
                         filetype::Type type, std::uint32_t layer_index) {
  ContentEntry& entry = entries_[remap_key(content_key)];
  if (entry.count == 0) {
    entry.size = size;
    entry.type = type;
    entry.first_layer = layer_index;
  } else if (!entry.multi_layer && entry.first_layer != layer_index) {
    entry.multi_layer = true;
  }
  ++entry.count;
}

void FileDedupIndex::merge(const FileDedupIndex& other) {
  other.entries_.for_each([&](std::uint64_t key, const ContentEntry& in) {
    ContentEntry& entry = entries_[key];
    if (entry.count == 0) {
      entry = in;
      return;
    }
    entry.count += in.count;
    entry.multi_layer = entry.multi_layer || in.multi_layer ||
                        entry.first_layer != in.first_layer;
    entry.first_layer = std::min(entry.first_layer, in.first_layer);
  });
}

DedupTotals FileDedupIndex::totals() const {
  DedupTotals totals;
  entries_.for_each([&](std::uint64_t, const ContentEntry& entry) {
    totals.total_files += entry.count;
    totals.total_bytes += entry.count * entry.size;
    totals.unique_files += 1;
    totals.unique_bytes += entry.size;
  });
  return totals;
}

stats::Ecdf FileDedupIndex::repeat_count_cdf() const {
  stats::Ecdf cdf;
  cdf.reserve(entries_.size());
  entries_.for_each([&](std::uint64_t, const ContentEntry& entry) {
    cdf.add(static_cast<double>(entry.count));
  });
  return cdf;
}

ContentEntry FileDedupIndex::max_repeat() const {
  ContentEntry best;
  entries_.for_each([&](std::uint64_t, const ContentEntry& entry) {
    if (entry.count > best.count) best = entry;
  });
  return best;
}

}  // namespace dockmine::dedup
