#include "dockmine/dedup/file_dedup.h"

#include <algorithm>

namespace dockmine::dedup {

void FileDedupIndex::add(std::uint64_t content_key, std::uint64_t size,
                         filetype::Type type, std::uint32_t layer_index) {
  ContentEntry observation;
  observation.count = 1;
  observation.size = size;
  observation.type = type;
  observation.first_layer = layer_index;
  fold_into(remap_key(content_key), observation);
}

void FileDedupIndex::merge(const FileDedupIndex& other) {
  conflicts_ += other.conflicts_;
  underflows_ += other.underflows_;
  other.for_each([&](std::uint64_t key, const ContentEntry& in) {
    fold_into(key, in);
  });
}

bool FileDedupIndex::retract_entry(std::uint64_t key,
                                   const ContentEntry& entry) {
  if (entry.count == 0) return true;  // retracting nothing is a no-op
  ContentEntry* resident = entries_.find_mut(key);
  if (resident == nullptr || resident->count < entry.count) {
    // The contribution was never folded in (or not fully): clamp to a
    // tombstone rather than wrapping, and record the anomaly.
    ++underflows_;
    if (resident != nullptr && resident->count != 0) {
      *resident = ContentEntry{};
      --live_;
    }
    return false;
  }
  if (resident->size != entry.size || resident->type != entry.type) {
    ++conflicts_;  // 64-bit key collision: resolution stays deterministic
  }
  if (unfold_content_entries(*resident, entry)) --live_;
  return true;
}

DedupTotals FileDedupIndex::totals() const {
  DedupTotals totals;
  for_each([&](std::uint64_t, const ContentEntry& entry) {
    totals.total_files += entry.count;
    totals.total_bytes += entry.count * entry.size;
    totals.unique_files += 1;
    totals.unique_bytes += entry.size;
  });
  return totals;
}

stats::Ecdf FileDedupIndex::repeat_count_cdf() const {
  stats::Ecdf cdf;
  cdf.reserve(live_);
  for_each([&](std::uint64_t, const ContentEntry& entry) {
    cdf.add(static_cast<double>(entry.count));
  });
  return cdf;
}

ContentEntry FileDedupIndex::max_repeat() const {
  ContentEntry best;
  for_each([&](std::uint64_t, const ContentEntry& entry) {
    if (entry.count > best.count) best = entry;
  });
  return best;
}

}  // namespace dockmine::dedup
