#include "dockmine/dedup/file_dedup.h"

#include <algorithm>

namespace dockmine::dedup {

void FileDedupIndex::add(std::uint64_t content_key, std::uint64_t size,
                         filetype::Type type, std::uint32_t layer_index) {
  ContentEntry& entry = entries_[remap_key(content_key)];
  ContentEntry observation;
  observation.count = 1;
  observation.size = size;
  observation.type = type;
  observation.first_layer = layer_index;
  if (merge_content_entries(entry, observation)) ++conflicts_;
}

void FileDedupIndex::merge(const FileDedupIndex& other) {
  conflicts_ += other.conflicts_;
  other.entries_.for_each([&](std::uint64_t key, const ContentEntry& in) {
    if (merge_content_entries(entries_[key], in)) ++conflicts_;
  });
}

DedupTotals FileDedupIndex::totals() const {
  DedupTotals totals;
  entries_.for_each([&](std::uint64_t, const ContentEntry& entry) {
    totals.total_files += entry.count;
    totals.total_bytes += entry.count * entry.size;
    totals.unique_files += 1;
    totals.unique_bytes += entry.size;
  });
  return totals;
}

stats::Ecdf FileDedupIndex::repeat_count_cdf() const {
  stats::Ecdf cdf;
  cdf.reserve(entries_.size());
  entries_.for_each([&](std::uint64_t, const ContentEntry& entry) {
    cdf.add(static_cast<double>(entry.count));
  });
  return cdf;
}

ContentEntry FileDedupIndex::max_repeat() const {
  ContentEntry best;
  entries_.for_each([&](std::uint64_t, const ContentEntry& entry) {
    if (entry.count > best.count) best = entry;
  });
  return best;
}

}  // namespace dockmine::dedup
