// File-level deduplication index — the engine behind §V-B..§V-E of the
// paper (Figs. 24, 25, 27, 28, 29 and the headline "only 3.2% of files are
// unique; 31.5x / 6.9x dedup").
//
// One entry per distinct content, keyed by the upper 64 bits of the file
// digest (collision odds at paper scale ~1e-4 — negligible against the
// ratios being measured). Each observation records the containing layer so
// cross-layer duplication (Fig. 26) is answerable from the same index.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dockmine/digest/digest.h"
#include "dockmine/filetype/taxonomy.h"
#include "dockmine/stats/cdf.h"
#include "dockmine/util/flat_map.h"

namespace dockmine::dedup {

struct ContentEntry {
  std::uint64_t count = 0;        ///< observed instances
  std::uint64_t size = 0;         ///< bytes of one instance
  std::uint32_t first_layer = 0;  ///< lowest layer id among observations
  filetype::Type type = filetype::Type::kEmpty;
  bool multi_layer = false;       ///< seen in >= 2 distinct layers
};

/// Fold a partial observation `in` of the same content into `into`.
/// Deterministic and order-independent (commutative + associative), so any
/// sharded/spilled partition of the observation stream folds back to the
/// exact entry the monolithic index would hold:
///   * counts add;
///   * the multi-layer bit ORs, and differing first-layers imply
///     multi-layer (exact: each side's first_layer is the minimum of a set
///     whose size-\>=2 case already set its bit);
///   * first_layer takes the minimum;
///   * conflicting size/type metadata (possible only under 64-bit key
///     collisions or corrupted slices) resolves to the lexicographically
///     smallest (size, type) pair instead of trusting whichever side merged
///     last.
/// Returns true when size/type conflicted, so callers can count mismatches.
inline bool merge_content_entries(ContentEntry& into,
                                  const ContentEntry& in) noexcept {
  if (into.count == 0) {
    into = in;
    return false;
  }
  const bool conflict = into.size != in.size || into.type != in.type;
  if (conflict && (in.size < into.size ||
                   (in.size == into.size && in.type < into.type))) {
    into.size = in.size;
    into.type = in.type;
  }
  into.count += in.count;
  into.multi_layer = into.multi_layer || in.multi_layer ||
                     into.first_layer != in.first_layer;
  into.first_layer = std::min(into.first_layer, in.first_layer);
  return conflict;
}

/// Inverse of merge_content_entries on the canonical fields: subtract a
/// previously folded contribution `out` from `into`. Counts subtract
/// (saturating — the caller detects underflow by comparing first);
/// size/type stay, since every contribution to a content-addressed key
/// carries the same pair (metadata conflicts are possible only under
/// 64-bit key collisions, which retract_entry counts instead of trusting).
/// first_layer/multi_layer are NOT invertible (minimum / OR lose their
/// history) and are left untouched — the canonical report deliberately
/// excludes both, which is what makes exact retraction possible at all
/// (DESIGN.md §15). Returns true when the subtraction emptied the entry.
inline bool unfold_content_entries(ContentEntry& into,
                                   const ContentEntry& out) noexcept {
  into.count -= std::min(into.count, out.count);
  if (into.count == 0) {
    into = ContentEntry{};
    return true;
  }
  return false;
}

struct DedupTotals {
  std::uint64_t total_files = 0;
  std::uint64_t unique_files = 0;   ///< distinct contents
  std::uint64_t total_bytes = 0;
  std::uint64_t unique_bytes = 0;   ///< one copy of each content

  /// Paper: 31.5x at full scale.
  double count_ratio() const noexcept {
    return unique_files == 0 ? 1.0
                             : static_cast<double>(total_files) /
                                   static_cast<double>(unique_files);
  }
  /// Paper: 6.9x at full scale.
  double capacity_ratio() const noexcept {
    return unique_bytes == 0 ? 1.0
                             : static_cast<double>(total_bytes) /
                                   static_cast<double>(unique_bytes);
  }
  /// Paper: ~3.2% ("after removing redundant files, 3.2% of files left").
  double unique_file_fraction() const noexcept {
    return total_files == 0 ? 0.0
                            : static_cast<double>(unique_files) /
                                  static_cast<double>(total_files);
  }
  /// Capacity removed by dedup (Fig. 27 y-axis; paper overall: 85.69%).
  double capacity_removed_fraction() const noexcept {
    return total_bytes == 0 ? 0.0
                            : 1.0 - static_cast<double>(unique_bytes) /
                                        static_cast<double>(total_bytes);
  }
};

class FileDedupIndex {
 public:
  explicit FileDedupIndex(std::size_t expected_contents = 1 << 16)
      : entries_(expected_contents) {}

  /// Observe one file instance living in unique layer `layer_index`.
  void add(std::uint64_t content_key, std::uint64_t size, filetype::Type type,
           std::uint32_t layer_index);

  void add(const digest::Digest& digest, std::uint64_t size,
           filetype::Type type, std::uint32_t layer_index) {
    add(remap_key(digest.key64()), size, type, layer_index);
  }

  /// Keys must be non-zero for the flat map; fold 0 onto a fixed value.
  static std::uint64_t remap_key(std::uint64_t key) noexcept {
    return key == 0 ? 0x9e3779b97f4a7c15ULL : key;
  }

  /// Splice a pre-folded entry (e.g. the outcome of a shard-run merge)
  /// under an already-remapped, nonzero key. Folds with
  /// merge_content_entries so repeated splices of partial entries behave
  /// exactly like the underlying add() calls would have.
  void insert_entry(std::uint64_t key, const ContentEntry& entry) {
    if (entry.count == 0) return;  // nothing observed; never revive a slot
    fold_into(key, entry);
  }

  /// Retraction: subtract a previously folded contribution (a retired
  /// layer's per-content entry) from the index. The inverse of
  /// insert_entry on the canonical fields — fold∘unfold round-trips to a
  /// byte-identical report (totals, repeat-count ECDF, by-type breakdown).
  /// An entry whose count reaches zero becomes a tombstone: it stays in
  /// the table (FlatMap64 cannot erase mid-probe-chain) but is skipped by
  /// every aggregate and by for_each/find. Returns false — and counts an
  /// underflow — when the key is unknown or holds fewer instances than
  /// retracted, which means the caller's contribution was never folded in.
  bool retract_entry(std::uint64_t key, const ContentEntry& entry);

  /// Retractions that did not match a resident contribution (unknown key
  /// or count underflow). Nonzero means the caller retracted something it
  /// never inserted; the index clamps instead of wrapping.
  std::uint64_t retract_underflows() const noexcept { return underflows_; }

  /// Merge another index built over a DISJOINT slice of the layer
  /// population (parallel sharding). Entry folding follows
  /// merge_content_entries: order-independent, with conflicting size/type
  /// resolved deterministically and counted instead of trusted blindly.
  void merge(const FileDedupIndex& other);

  /// Observations (add or merge) whose size/type metadata disagreed with
  /// the entry already held for the same content key. Nonzero means 64-bit
  /// key collisions or inconsistent input slices; the resolution is
  /// deterministic either way.
  std::uint64_t metadata_conflicts() const noexcept { return conflicts_; }

  DedupTotals totals() const;

  /// CDF of per-content repeat counts (Fig. 24): one sample per distinct
  /// content. The paper reads "50% of files have exactly 4 copies" off this
  /// curve.
  stats::Ecdf repeat_count_cdf() const;

  /// The single most-repeated content (paper: an empty file, 53.6M copies).
  ContentEntry max_repeat() const;

  /// Entry lookup for cross-duplicate analysis. Tombstoned (fully
  /// retracted) contents read as absent.
  const ContentEntry* find(std::uint64_t content_key) const {
    const ContentEntry* entry = entries_.find(content_key);
    return entry == nullptr || entry->count == 0 ? nullptr : entry;
  }
  const ContentEntry* find(const digest::Digest& digest) const {
    return find(remap_key(digest.key64()));
  }

  /// Live (non-tombstoned) distinct contents.
  std::size_t distinct_contents() const noexcept { return live_; }
  std::size_t memory_bytes() const noexcept { return entries_.memory_bytes(); }

  /// Iterate live entries only; tombstones never reach `fn`.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    entries_.for_each([&](std::uint64_t key, const ContentEntry& entry) {
      if (entry.count != 0) fn(key, entry);
    });
  }

 private:
  /// Fold one live contribution, maintaining the live-entry count across
  /// tombstone revivals (a re-observed content reuses its dead slot).
  void fold_into(std::uint64_t key, const ContentEntry& in) {
    ContentEntry& entry = entries_[key];
    const bool was_dead = entry.count == 0;
    if (merge_content_entries(entry, in)) ++conflicts_;
    if (was_dead && entry.count != 0) ++live_;
  }

  util::FlatMap64<ContentEntry> entries_;
  std::uint64_t conflicts_ = 0;
  std::uint64_t underflows_ = 0;
  std::size_t live_ = 0;
};

}  // namespace dockmine::dedup
