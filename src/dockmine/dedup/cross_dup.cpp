#include "dockmine/dedup/cross_dup.h"

namespace dockmine::dedup {

void CrossDupAnalysis::observe(std::uint32_t layer_index,
                               std::uint64_t content_key) {
  LayerTally& tally = per_layer_.at(layer_index);
  ++tally.files;
  const ContentEntry* entry =
      index_.find(FileDedupIndex::remap_key(content_key));
  if (entry == nullptr) return;  // index and stream out of sync; skip
  const bool cross_layer = entry->multi_layer;
  // Same-content copies within one layer also count as duplicates across
  // images whenever that layer serves more than one image.
  const bool cross_image =
      cross_layer || layer_refcounts_[entry->first_layer] > 1 ||
      (entry->count > 1 && layer_refcounts_[layer_index] > 1);
  if (cross_layer) ++tally.cross_layer;
  if (cross_image) ++tally.cross_image;
}

stats::Ecdf CrossDupAnalysis::cross_layer_cdf() const {
  stats::Ecdf cdf;
  for (const LayerTally& tally : per_layer_) {
    if (tally.files == 0) continue;
    cdf.add(static_cast<double>(tally.cross_layer) /
            static_cast<double>(tally.files));
  }
  return cdf;
}

stats::Ecdf CrossDupAnalysis::cross_image_cdf(
    std::span<const std::vector<std::uint32_t>> images) const {
  stats::Ecdf cdf;
  for (const auto& layer_indices : images) {
    std::uint64_t files = 0;
    std::uint64_t dups = 0;
    for (std::uint32_t layer : layer_indices) {
      const LayerTally& tally = per_layer_.at(layer);
      files += tally.files;
      dups += tally.cross_image;
    }
    if (files == 0) continue;
    cdf.add(static_cast<double>(dups) / static_cast<double>(files));
  }
  return cdf;
}

}  // namespace dockmine::dedup
