// Type-resolved statistics derived from the dedup index:
//  * the file-type characterization of §IV-C (Figs. 14-22: count/capacity
//    shares and average sizes per group and per type), and
//  * the per-type dedup ratios of §V-E (Figs. 27-29).
#pragma once

#include <array>
#include <cstdint>

#include "dockmine/dedup/file_dedup.h"
#include "dockmine/filetype/taxonomy.h"

namespace dockmine::dedup {

struct TypeStats {
  std::uint64_t count = 0;        ///< file instances
  std::uint64_t bytes = 0;
  std::uint64_t unique_count = 0; ///< distinct contents
  std::uint64_t unique_bytes = 0;

  double avg_size() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(bytes) / static_cast<double>(count);
  }
  /// Fig. 27/28/29 y-axis: fraction of this type's capacity removed.
  double capacity_removed() const noexcept {
    return bytes == 0 ? 0.0
                      : 1.0 - static_cast<double>(unique_bytes) /
                                  static_cast<double>(bytes);
  }
  double count_removed() const noexcept {
    return count == 0 ? 0.0
                      : 1.0 - static_cast<double>(unique_count) /
                                  static_cast<double>(count);
  }

  void merge(const TypeStats& other) noexcept {
    count += other.count;
    bytes += other.bytes;
    unique_count += other.unique_count;
    unique_bytes += other.unique_bytes;
  }
};

/// Aggregate the dedup index by level-3 type and level-2 group.
///
/// Two construction styles: from a resident FileDedupIndex (one shot), or
/// streaming — default-construct, observe() each distinct-content entry
/// exactly once (e.g. while a ShardMerger folds spilled runs), then
/// finalize(). The sharded out-of-core path uses the streaming form so the
/// breakdown never needs the full index resident.
class TypeBreakdown {
 public:
  TypeBreakdown() = default;
  explicit TypeBreakdown(const FileDedupIndex& index);

  /// Streaming construction: fold one distinct content's entry.
  void observe(const ContentEntry& entry);

  /// Derive group and overall rollups from the observed types. Idempotent;
  /// required before any by_group/overall/share query on the streaming
  /// form.
  void finalize();

  const TypeStats& by_type(filetype::Type type) const {
    return types_[static_cast<std::size_t>(type)];
  }
  const TypeStats& by_group(filetype::Group group) const {
    return groups_[static_cast<std::size_t>(group)];
  }
  const TypeStats& overall() const noexcept { return overall_; }

  /// Count / capacity shares for the Fig. 14 panels.
  double count_share(filetype::Group group) const;
  double capacity_share(filetype::Group group) const;
  double count_share(filetype::Type type) const;
  double capacity_share(filetype::Type type) const;

 private:
  std::array<TypeStats, filetype::kTypeCount> types_{};
  std::array<TypeStats, filetype::kGroupCount> groups_{};
  TypeStats overall_{};
};

}  // namespace dockmine::dedup
