#include "dockmine/dedup/growth.h"

#include <algorithm>

#include "dockmine/stats/sampling.h"
#include "dockmine/util/rng.h"

namespace dockmine::dedup {

std::vector<GrowthPoint> dedup_growth(
    std::uint64_t n_layers, std::span<const std::uint64_t> sample_sizes,
    const std::function<void(std::uint64_t, std::uint32_t, FileDedupIndex&)>&
        stream_layer,
    std::uint64_t seed) {
  std::vector<GrowthPoint> points;
  points.reserve(sample_sizes.size());
  util::Rng rng(seed);
  for (std::uint64_t want : sample_sizes) {
    const std::uint64_t take = std::min(want, n_layers);
    std::vector<std::uint64_t> chosen =
        stats::sample_indices(n_layers, static_cast<std::size_t>(take), rng);
    FileDedupIndex index(static_cast<std::size_t>(take) * 64);
    std::uint32_t dense = 0;
    for (std::uint64_t ordinal : chosen) {
      stream_layer(ordinal, dense++, index);
    }
    points.push_back(GrowthPoint{take, index.totals()});
  }
  return points;
}

}  // namespace dockmine::dedup
