// Layer-sharing analysis (paper §V-A, Fig. 23): how many images reference
// each layer, and how much registry space the sharing mechanism saves
// ("without layer sharing the dataset would grow from 47 TB to 85 TB,
// a 1.8x deduplication ratio").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dockmine/stats/cdf.h"
#include "dockmine/util/flat_map.h"

namespace dockmine::dedup {

class LayerSharingAnalysis {
 public:
  /// One manifest: the (layer key, compressed layer size) pairs it
  /// references. Layer keys are digests' key64 or synthetic layer ids.
  struct LayerUse {
    std::uint64_t layer_key = 0;
    std::uint64_t cls = 0;
  };
  void add_image(std::span<const LayerUse> layers);

  /// CDF of reference counts over distinct layers (Fig. 23; paper: ~90%
  /// referenced once, +5% twice, <1% by more than 25).
  stats::Ecdf reference_count_cdf() const;

  struct TopLayer {
    std::uint64_t layer_key = 0;
    std::uint64_t references = 0;
    std::uint64_t cls = 0;
  };
  /// Most-referenced layers, descending (paper: the empty layer at 184,171
  /// references, then distro bases at 29,200-33,413).
  std::vector<TopLayer> top(std::size_t k) const;

  /// Bytes as stored (each layer once) vs bytes if every image kept private
  /// copies — the paper's 47 TB vs 85 TB.
  std::uint64_t physical_bytes() const noexcept { return physical_bytes_; }
  std::uint64_t logical_bytes() const noexcept { return logical_bytes_; }
  double sharing_ratio() const noexcept {
    return physical_bytes_ == 0
               ? 1.0
               : static_cast<double>(logical_bytes_) /
                     static_cast<double>(physical_bytes_);
  }

  std::uint64_t distinct_layers() const noexcept { return refs_.size(); }
  std::uint64_t images_seen() const noexcept { return images_; }

  /// Point lookup for one layer key (the serve daemon's layer-sharing
  /// query); nullopt for a layer no delivered manifest references.
  struct RefInfo {
    std::uint64_t references = 0;
    std::uint64_t cls = 0;
  };
  std::optional<RefInfo> lookup(std::uint64_t layer_key) const {
    const Entry* entry = refs_.find(layer_key);
    if (entry == nullptr) return std::nullopt;
    return RefInfo{entry->references, entry->cls};
  }

 private:
  struct Entry {
    std::uint64_t references = 0;
    std::uint64_t cls = 0;
  };
  util::FlatMap64<Entry> refs_;
  std::uint64_t physical_bytes_ = 0;
  std::uint64_t logical_bytes_ = 0;
  std::uint64_t images_ = 0;
};

}  // namespace dockmine::dedup
