#include "dockmine/dedup/layer_sharing.h"

#include <algorithm>

namespace dockmine::dedup {

void LayerSharingAnalysis::add_image(std::span<const LayerUse> layers) {
  ++images_;
  for (const LayerUse& use : layers) {
    const std::uint64_t key = use.layer_key == 0 ? ~0ULL : use.layer_key;
    Entry& entry = refs_[key];
    if (entry.references == 0) {
      entry.cls = use.cls;
      physical_bytes_ += use.cls;
    }
    ++entry.references;
    logical_bytes_ += use.cls;
  }
}

stats::Ecdf LayerSharingAnalysis::reference_count_cdf() const {
  stats::Ecdf cdf;
  cdf.reserve(refs_.size());
  refs_.for_each([&](std::uint64_t, const Entry& entry) {
    cdf.add(static_cast<double>(entry.references));
  });
  return cdf;
}

std::vector<LayerSharingAnalysis::TopLayer> LayerSharingAnalysis::top(
    std::size_t k) const {
  std::vector<TopLayer> all;
  all.reserve(refs_.size());
  refs_.for_each([&](std::uint64_t key, const Entry& entry) {
    all.push_back(TopLayer{key, entry.references, entry.cls});
  });
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const TopLayer& a, const TopLayer& b) {
                      return a.references > b.references;
                    });
  all.resize(take);
  return all;
}

}  // namespace dockmine::dedup
