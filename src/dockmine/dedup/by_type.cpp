#include "dockmine/dedup/by_type.h"

namespace dockmine::dedup {

TypeBreakdown::TypeBreakdown(const FileDedupIndex& index) {
  index.for_each(
      [&](std::uint64_t, const ContentEntry& entry) { observe(entry); });
  finalize();
}

void TypeBreakdown::observe(const ContentEntry& entry) {
  TypeStats& type_stats = types_[static_cast<std::size_t>(entry.type)];
  type_stats.count += entry.count;
  type_stats.bytes += entry.count * entry.size;
  type_stats.unique_count += 1;
  type_stats.unique_bytes += entry.size;
}

void TypeBreakdown::finalize() {
  groups_.fill(TypeStats{});
  overall_ = TypeStats{};
  for (std::size_t t = 0; t < types_.size(); ++t) {
    const auto group = filetype::group_of(static_cast<filetype::Type>(t));
    groups_[static_cast<std::size_t>(group)].merge(types_[t]);
    overall_.merge(types_[t]);
  }
}

double TypeBreakdown::count_share(filetype::Group group) const {
  return overall_.count == 0
             ? 0.0
             : static_cast<double>(by_group(group).count) /
                   static_cast<double>(overall_.count);
}

double TypeBreakdown::capacity_share(filetype::Group group) const {
  return overall_.bytes == 0
             ? 0.0
             : static_cast<double>(by_group(group).bytes) /
                   static_cast<double>(overall_.bytes);
}

double TypeBreakdown::count_share(filetype::Type type) const {
  const auto group = filetype::group_of(type);
  const auto& group_stats = by_group(group);
  return group_stats.count == 0
             ? 0.0
             : static_cast<double>(by_type(type).count) /
                   static_cast<double>(group_stats.count);
}

double TypeBreakdown::capacity_share(filetype::Type type) const {
  const auto group = filetype::group_of(type);
  const auto& group_stats = by_group(group);
  return group_stats.bytes == 0
             ? 0.0
             : static_cast<double>(by_type(type).bytes) /
                   static_cast<double>(group_stats.bytes);
}

}  // namespace dockmine::dedup
