// Cross-layer and cross-image file duplicates (paper §V-D, Fig. 26):
// per layer, the fraction of its files whose content also exists in some
// OTHER layer; per image, the fraction duplicated in some other image.
//
// Works in two streaming passes over the same deterministic file stream:
// pass 1 populates the FileDedupIndex (which tracks first-layer and the
// multi-layer bit); pass 2 re-streams each layer and counts. A file counts
// as duplicated across images when its content spans two layers, or when
// its (single) layer is referenced by more than one image — exact except
// for the rare content confined to two layers of one image.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dockmine/dedup/file_dedup.h"
#include "dockmine/stats/cdf.h"

namespace dockmine::dedup {

class CrossDupAnalysis {
 public:
  /// `index` must outlive the analysis. `layer_refcounts[i]` = number of
  /// images referencing unique layer i.
  CrossDupAnalysis(const FileDedupIndex& index,
                   std::vector<std::uint32_t> layer_refcounts)
      : index_(index), layer_refcounts_(std::move(layer_refcounts)) {
    per_layer_.resize(layer_refcounts_.size());
  }

  /// Pass 2: observe one file of unique layer `layer_index`.
  void observe(std::uint32_t layer_index, std::uint64_t content_key);

  struct LayerTally {
    std::uint64_t files = 0;
    std::uint64_t cross_layer = 0;
    std::uint64_t cross_image = 0;
  };

  /// CDF over layers of the cross-layer duplicate fraction (Fig. 26a;
  /// paper: 90% of layers have >= 97.6% duplicated files). Layers with no
  /// files are skipped, as in the paper.
  stats::Ecdf cross_layer_cdf() const;

  /// CDF over images of the cross-image duplicate fraction (Fig. 26b;
  /// paper: 90% of images >= 99.4%). The caller supplies each image's
  /// unique-layer indices.
  stats::Ecdf cross_image_cdf(
      std::span<const std::vector<std::uint32_t>> images) const;

  const LayerTally& layer_tally(std::uint32_t layer_index) const {
    return per_layer_.at(layer_index);
  }

 private:
  const FileDedupIndex& index_;
  std::vector<std::uint32_t> layer_refcounts_;
  std::vector<LayerTally> per_layer_;
};

}  // namespace dockmine::dedup
