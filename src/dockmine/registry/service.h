// In-process Docker Registry V2 service facade.
//
// This is the substitution for live Docker Hub (see DESIGN.md): the
// downloader speaks the same protocol steps against it — resolve a tag to a
// manifest, then fetch each referenced layer blob — and encounters the same
// failure classes (401 for auth-gated repositories, 404 for repositories
// without a `latest` tag). A simple service-time model (per-request base
// cost + per-byte transfer cost) lets benches reason about pull latency,
// including the paper's "store small layers uncompressed" trade-off (§IV-A).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dockmine/blob/store.h"
#include "dockmine/digest/digest.h"
#include "dockmine/registry/manifest.h"
#include "dockmine/registry/model.h"
#include "dockmine/util/error.h"

namespace dockmine::registry {

bool is_official_name(std::string_view name) noexcept;
bool is_valid_repository_name(std::string_view name) noexcept;

/// Read-side registry interface the downloader speaks: resolve a tag to a
/// manifest, fetch a blob. Implemented in-process by Service and over the
/// wire by RemoteRegistry (http_gateway.h).
class Source {
 public:
  virtual ~Source() = default;
  virtual util::Result<std::string> fetch_manifest(
      const std::string& repository, const std::string& tag,
      bool authenticated) = 0;
  virtual util::Result<blob::BlobPtr> fetch_blob(
      const digest::Digest& digest) = 0;
};

/// Simulated service-time model for one request.
struct CostModel {
  double base_ms = 40.0;          ///< connection + request overhead
  double per_mb_ms = 9.0;         ///< transfer cost per (decimal) MB (~110 MB/s)
  /// Client-side decompression cost per MB of *uncompressed* output
  /// (~220 MB/s gunzip) — "compression ... is one of the major sources of
  /// latency when pulling" (paper §IV-A, citing Slacker). With these
  /// constants compression pays off iff the layer's ratio beats
  /// per_mb / (per_mb - decompress) = 2.0 — the paper's small/low-ratio
  /// layers sit below that break-even.
  double decompress_per_mb_ms = 4.5;

  double transfer_ms(std::uint64_t bytes) const noexcept {
    return base_ms + per_mb_ms * static_cast<double>(bytes) / 1e6;
  }
};

struct ServiceStats {
  std::uint64_t manifest_requests = 0;
  std::uint64_t blob_requests = 0;
  std::uint64_t not_found = 0;
  std::uint64_t unauthorized = 0;
  std::uint64_t bytes_served = 0;
  double simulated_ms = 0.0;      ///< sum of modeled service times
};

/// The registry. Thread-safe; writers (the generator pushing images) and
/// readers (the downloader's worker pool) may interleave.
class Service : public Source {
 public:
  explicit Service(CostModel cost = {}) : cost_(cost) {}

  // ---- push side (used by the synthetic hub builder) ----

  /// Create or update a repository entry.
  void put_repository(Repository repo);

  /// Store a manifest: serializes it, stores the JSON as a blob, points
  /// `repo:tag` at it. Returns the manifest digest.
  util::Result<digest::Digest> push_manifest(const Manifest& manifest);

  /// Store a layer/config blob.
  digest::Digest push_blob(std::string content) { return blobs_.put(std::move(content)); }
  util::Status push_blob_with_digest(const digest::Digest& digest,
                                     std::string content) {
    return blobs_.put_with_digest(digest, std::move(content));
  }

  // ---- pull side (Registry V2 verbs) ----

  /// GET /v2/<name>/manifests/<tag>. 401 if the repository requires auth
  /// and no token is presented; 404 for unknown repo or tag.
  util::Result<std::string> get_manifest(const std::string& repository,
                                         const std::string& tag,
                                         bool authenticated = false);

  /// GET /v2/<name>/blobs/<digest>.
  util::Result<blob::BlobPtr> get_blob(const digest::Digest& digest);

  // Source interface.
  util::Result<std::string> fetch_manifest(const std::string& repository,
                                           const std::string& tag,
                                           bool authenticated) override {
    return get_manifest(repository, tag, authenticated);
  }
  util::Result<blob::BlobPtr> fetch_blob(const digest::Digest& digest) override {
    return get_blob(digest);
  }

  /// HEAD equivalent: does the blob exist (size if so)?
  util::Result<std::uint64_t> stat_blob(const digest::Digest& digest) const {
    return blobs_.stat(digest);
  }

  // ---- introspection ----

  std::optional<Repository> find_repository(const std::string& name) const;
  std::vector<std::string> repository_names() const;
  std::size_t repository_count() const;

  ServiceStats stats() const;
  const CostModel& cost_model() const noexcept { return cost_; }
  blob::StoreStats blob_stats() const { return blobs_.stats(); }

 private:
  CostModel cost_;
  blob::Store blobs_;
  mutable std::mutex mutex_;  // guards repos_ and stats_
  std::unordered_map<std::string, Repository> repos_;
  ServiceStats stats_;
};

}  // namespace dockmine::registry
