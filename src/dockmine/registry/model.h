// Registry data model: layers, manifests, repositories — the entities the
// paper's §II-B/§II-C describe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dockmine/digest/digest.h"

namespace dockmine::registry {

/// Reference to one layer blob from a manifest.
struct LayerRef {
  digest::Digest digest;          ///< digest of the *compressed* layer blob
  std::uint64_t compressed_size = 0;
};

/// Image manifest (schema v2 subset): ordered layer list + config.
struct Manifest {
  std::string repository;         ///< e.g. "library/nginx" or "alice/app"
  std::string tag = "latest";
  std::string architecture = "amd64";
  std::string os = "linux";
  digest::Digest config_digest;
  std::uint64_t config_size = 0;
  std::vector<LayerRef> layers;

  std::uint64_t compressed_image_size() const noexcept {
    std::uint64_t total = 0;
    for (const auto& layer : layers) total += layer.compressed_size;
    return total;
  }
};

/// A repository: namespace entry holding tagged manifests plus the
/// popularity metadata Docker Hub exposes.
struct Repository {
  std::string name;
  bool official = false;          ///< "<name>" vs "<user>/<name>"
  bool requires_auth = false;     ///< pulls fail with 401 (13% of the paper's
                                  ///< failed downloads)
  std::uint64_t pull_count = 0;
  std::uint64_t star_count = 0;
  std::map<std::string, digest::Digest> tags;  ///< tag -> manifest digest

  bool has_tag(const std::string& tag) const {
    return tags.find(tag) != tags.end();
  }
};

}  // namespace dockmine::registry
