#include "dockmine/registry/throttle.h"

#include <chrono>
#include <thread>

namespace dockmine::registry {

void ThrottledSource::stall(double modeled_ms) {
  if (scale_ <= 0.0) return;
  const double ms = modeled_ms * scale_;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  double prev = throttled_ms_.load(std::memory_order_relaxed);
  while (!throttled_ms_.compare_exchange_weak(prev, prev + ms,
                                              std::memory_order_relaxed)) {
  }
}

util::Result<std::string> ThrottledSource::fetch_manifest(
    const std::string& repository, const std::string& tag,
    bool authenticated) {
  stall(cost_.base_ms);
  return upstream_.fetch_manifest(repository, tag, authenticated);
}

util::Result<blob::BlobPtr> ThrottledSource::fetch_blob(
    const digest::Digest& digest) {
  auto blob = upstream_.fetch_blob(digest);
  // Transfer time depends on the byte count actually served.
  stall(cost_.transfer_ms(blob.ok() ? blob.value()->size() : 0));
  return blob;
}

}  // namespace dockmine::registry
