#include "dockmine/registry/service.h"

namespace dockmine::registry {

void Service::put_repository(Repository repo) {
  std::lock_guard lock(mutex_);
  repos_[repo.name] = std::move(repo);
}

util::Result<digest::Digest> Service::push_manifest(const Manifest& manifest) {
  if (!is_valid_repository_name(manifest.repository)) {
    return util::invalid_argument("bad repository name '" +
                                  manifest.repository + "'");
  }
  const std::string body = manifest_to_json(manifest);
  const digest::Digest digest = blobs_.put(body);
  std::lock_guard lock(mutex_);
  auto& repo = repos_[manifest.repository];
  if (repo.name.empty()) {
    repo.name = manifest.repository;
    repo.official = is_official_name(manifest.repository);
  }
  repo.tags[manifest.tag] = digest;
  return digest;
}

util::Result<std::string> Service::get_manifest(const std::string& repository,
                                                const std::string& tag,
                                                bool authenticated) {
  digest::Digest manifest_digest;
  {
    std::lock_guard lock(mutex_);
    ++stats_.manifest_requests;
    stats_.simulated_ms += cost_.base_ms;
    const auto it = repos_.find(repository);
    if (it == repos_.end()) {
      ++stats_.not_found;
      return util::not_found("repository '" + repository + "'");
    }
    if (it->second.requires_auth && !authenticated) {
      ++stats_.unauthorized;
      return util::unauthorized("repository '" + repository +
                                "' requires a token");
    }
    const auto tag_it = it->second.tags.find(tag);
    if (tag_it == it->second.tags.end()) {
      ++stats_.not_found;
      return util::not_found("repository '" + repository + "' has no tag '" +
                             tag + "'");
    }
    manifest_digest = tag_it->second;
  }
  auto body = blobs_.get(manifest_digest);
  if (!body.ok()) return std::move(body).error();
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_served += body.value()->size();
  }
  return std::string(*body.value());
}

util::Result<blob::BlobPtr> Service::get_blob(const digest::Digest& digest) {
  auto blob = blobs_.get(digest);
  std::lock_guard lock(mutex_);
  ++stats_.blob_requests;
  if (!blob.ok()) {
    ++stats_.not_found;
    stats_.simulated_ms += cost_.base_ms;
    return blob;
  }
  stats_.bytes_served += blob.value()->size();
  stats_.simulated_ms += cost_.transfer_ms(blob.value()->size());
  return blob;
}

std::optional<Repository> Service::find_repository(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = repos_.find(name);
  if (it == repos_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Service::repository_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(repos_.size());
  for (const auto& [name, repo] : repos_) {
    (void)repo;
    names.push_back(name);
  }
  return names;
}

std::size_t Service::repository_count() const {
  std::lock_guard lock(mutex_);
  return repos_.size();
}

ServiceStats Service::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace dockmine::registry
