#include "dockmine/registry/gc.h"

#include <unordered_set>
#include <vector>

namespace dockmine::registry {

util::Result<GcReport> collect_garbage(
    std::span<const std::string> live_manifest_json, blob::DiskStore& store) {
  // Mark: every digest reachable from a live manifest.
  std::unordered_set<digest::Digest, digest::DigestHash> live;
  for (const std::string& body : live_manifest_json) {
    live.insert(digest::Digest::of(body));  // the manifest's own blob
    auto manifest = manifest_from_json(body);
    if (!manifest.ok()) return std::move(manifest).error();
    if (!manifest.value().config_digest.is_zero()) {
      live.insert(manifest.value().config_digest);
    }
    for (const LayerRef& layer : manifest.value().layers) {
      live.insert(layer.digest);
    }
  }

  // Sweep: everything else.
  GcReport report;
  std::vector<digest::Digest> victims;
  auto walked = store.for_each_digest(
      [&](const digest::Digest& digest, std::uint64_t size) {
        if (live.count(digest)) {
          ++report.live_blobs;
          report.live_bytes += size;
        } else {
          victims.push_back(digest);
          ++report.swept_blobs;
          report.swept_bytes += size;
        }
      });
  if (!walked.ok()) return walked.error();
  for (const digest::Digest& victim : victims) {
    auto removed = store.remove(victim);
    if (!removed.ok()) return removed.error();
  }
  return report;
}

}  // namespace dockmine::registry
