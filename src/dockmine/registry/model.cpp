#include "dockmine/registry/model.h"

// Repository-name helpers live here; declared in service.h's support header
// space but kept near the model.
#include <cctype>

namespace dockmine::registry {

bool is_official_name(std::string_view name) noexcept {
  return name.find('/') == std::string_view::npos;
}

bool is_valid_repository_name(std::string_view name) noexcept {
  if (name.empty() || name.size() > 255) return false;
  std::size_t slashes = 0;
  char prev = '\0';
  for (char c : name) {
    if (c == '/') {
      ++slashes;
      if (prev == '\0' || prev == '/') return false;  // empty component
    } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                 std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '_' || c == '.')) {
      return false;
    }
    prev = c;
  }
  return prev != '/' && slashes <= 1;
}

}  // namespace dockmine::registry
