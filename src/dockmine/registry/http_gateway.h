// Registry V2 over real HTTP: the gateway maps the wire protocol onto the
// in-process Service, and RemoteRegistry is the matching client — so the
// crawler and downloader can run against an actual socket the way the
// paper's tools ran against Docker Hub.
//
// Routes:
//   GET /v2/                              liveness ping
//   GET /v2/<name>/manifests/<reference>  manifest JSON (401/404 semantics)
//   GET /v2/<name>/blobs/<digest>         blob bytes (octet-stream)
//   PUT /v2/<name>/blobs/<digest>         monolithic blob upload (push)
//   PUT /v2/<name>/manifests/<reference>  manifest upload (push)
//   GET /v1/search?q=&page=&page_size=    paginated search (crawler feed)
//
// Auth: "Authorization: Bearer <token>" marks the request authenticated
// (the gateway does not validate token contents — the paper's failure
// taxonomy only needs the authenticated/anonymous distinction).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dockmine/http/client.h"
#include "dockmine/http/message.h"
#include "dockmine/http/server.h"
#include "dockmine/registry/search.h"
#include "dockmine/registry/service.h"

namespace dockmine::registry {

class HttpGateway {
 public:
  /// `search` may be null (the /v1/search route then 404s).
  HttpGateway(Service& service, const SearchBackend* search = nullptr)
      : service_(service), search_(search) {}

  http::Response handle(const http::Request& request) const;

  /// Convenience: spin up an http::Server bound to 127.0.0.1:`port`
  /// dispatching into this gateway. The gateway must outlive the server.
  util::Result<std::unique_ptr<http::Server>> serve(
      std::uint16_t port = 0, std::size_t workers = 4) const;

 private:
  http::Response handle_manifest(const http::Request& request,
                                 const std::string& name,
                                 const std::string& reference) const;
  http::Response handle_blob(const std::string& digest_text) const;
  http::Response handle_blob_put(const http::Request& request,
                                 const std::string& digest_text) const;
  http::Response handle_manifest_put(const http::Request& request,
                                     const std::string& name,
                                     const std::string& reference) const;
  http::Response handle_search(const http::Request& request) const;

  Service& service_;
  const SearchBackend* search_;
};

/// Client side: a registry Source + SearchBackend speaking the gateway's
/// protocol over a keep-alive connection pool. Thread-safe.
class RemoteRegistry : public Source, public SearchBackend {
 public:
  explicit RemoteRegistry(std::uint16_t port, std::string bearer_token = "",
                          http::ClientOptions client_options = {})
      : client_(port, client_options), token_(std::move(bearer_token)) {}

  util::Result<std::string> fetch_manifest(const std::string& repository,
                                           const std::string& tag,
                                           bool authenticated) override;
  util::Result<blob::BlobPtr> fetch_blob(const digest::Digest& digest) override;

  /// Push side: upload a blob (monolithic PUT) / a manifest document.
  util::Status push_blob(const digest::Digest& digest,
                         const std::string& content);
  util::Status push_manifest(const std::string& repository,
                             const std::string& tag,
                             const std::string& manifest_json);

  SearchPage page(const std::string& query, std::uint64_t page_number,
                  std::size_t page_size) const override;

  /// Fallible page fetch: surfaces transport errors (timeout, reset) and
  /// maps 5xx to kUnavailable so the crawler's retry loop composes with
  /// real HTTP.
  util::Result<SearchPage> try_page(const std::string& query,
                                    std::uint64_t page_number,
                                    std::size_t page_size) const override;

  /// GET /v2/ liveness check.
  util::Status ping();

 private:
  util::Result<http::Response> get(const std::string& target,
                                   bool authenticated) const;

  mutable http::Client client_;
  std::string token_;
};

}  // namespace dockmine::registry
