// Registry garbage collection: mark-and-sweep over an on-disk blob store.
//
// The operational counterpart of the paper's reference-count analysis
// (Fig. 23): layers are shared, so deleting an image must not delete blobs
// other manifests still reference. GC marks everything reachable from the
// live manifests (manifest blob, config blob, layer blobs) and sweeps the
// rest — the same discipline `registry garbage-collect` applies in the
// real Docker distribution registry.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dockmine/blob/disk_store.h"
#include "dockmine/registry/manifest.h"

namespace dockmine::registry {

struct GcReport {
  std::uint64_t live_blobs = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t swept_blobs = 0;
  std::uint64_t swept_bytes = 0;
};

/// Sweep every blob in `store` not reachable from `live_manifest_json`
/// (each entry a serialized manifest whose own blob may also live in the
/// store). Returns what was kept and what was reclaimed.
util::Result<GcReport> collect_garbage(
    std::span<const std::string> live_manifest_json, blob::DiskStore& store);

}  // namespace dockmine::registry
