#include "dockmine/registry/manifest.h"

#include "dockmine/json/json.h"

namespace dockmine::registry {

namespace {
constexpr std::string_view kManifestMediaType =
    "application/vnd.docker.distribution.manifest.v2+json";
constexpr std::string_view kConfigMediaType =
    "application/vnd.docker.container.image.v1+json";
constexpr std::string_view kLayerMediaType =
    "application/vnd.docker.image.rootfs.diff.tar.gzip";
}  // namespace

std::string manifest_to_json(const Manifest& manifest) {
  json::Value root = json::Value::object();
  root.set("schemaVersion", 2);
  root.set("mediaType", std::string(kManifestMediaType));
  // Non-standard but convenient: carry name/tag/platform so the analyzer can
  // build image profiles without a separate config fetch.
  root.set("name", manifest.repository);
  root.set("tag", manifest.tag);
  root.set("architecture", manifest.architecture);
  root.set("os", manifest.os);

  json::Value config = json::Value::object();
  config.set("mediaType", std::string(kConfigMediaType));
  config.set("size", manifest.config_size);
  config.set("digest", manifest.config_digest.to_string());
  root.set("config", std::move(config));

  json::Value layers = json::Value::array();
  for (const auto& layer : manifest.layers) {
    json::Value entry = json::Value::object();
    entry.set("mediaType", std::string(kLayerMediaType));
    entry.set("size", layer.compressed_size);
    entry.set("digest", layer.digest.to_string());
    layers.push_back(std::move(entry));
  }
  root.set("layers", std::move(layers));
  return root.dump();
}

util::Result<Manifest> manifest_from_json(std::string_view json_text) {
  auto doc = json::parse(json_text);
  if (!doc.ok()) return std::move(doc).error();
  const json::Value& root = doc.value();
  if (!root.is_object()) return util::corrupt("manifest is not an object");
  if (!root["schemaVersion"].is_int() || root["schemaVersion"].as_int() != 2) {
    return util::corrupt("unsupported manifest schemaVersion");
  }
  if (root["mediaType"].as_string() != kManifestMediaType) {
    return util::corrupt("unexpected manifest mediaType");
  }
  Manifest out;
  out.repository = root["name"].as_string();
  out.tag = root["tag"].is_string() ? root["tag"].as_string() : "latest";
  if (root["architecture"].is_string()) {
    out.architecture = root["architecture"].as_string();
  }
  if (root["os"].is_string()) out.os = root["os"].as_string();

  const json::Value& config = root["config"];
  if (config.is_object()) {
    auto d = digest::Digest::parse(config["digest"].as_string());
    if (!d.ok()) return std::move(d).error();
    out.config_digest = d.value();
    out.config_size = config["size"].as_uint();
  }

  const json::Value& layers = root["layers"];
  if (!layers.is_array()) return util::corrupt("manifest missing layers[]");
  out.layers.reserve(layers.size());
  for (const json::Value& entry : layers.items()) {
    auto d = digest::Digest::parse(entry["digest"].as_string());
    if (!d.ok()) return std::move(d).error();
    out.layers.push_back(LayerRef{d.value(), entry["size"].as_uint()});
  }
  return out;
}

}  // namespace dockmine::registry
