#include "dockmine/registry/faults.h"

namespace dockmine::registry {

void FaultInjector::fail_next(const std::string& key, int attempts,
                              util::ErrorCode code) {
  std::lock_guard lock(mutex_);
  scripts_[key] = Script{attempts, code};
}

FaultInjector::Decision FaultInjector::next(const std::string& key,
                                            bool corruptible) {
  Decision decision;
  std::uint64_t attempt = 0;
  {
    std::lock_guard lock(mutex_);
    attempt = ++attempts_[key];
    ++stats_.requests;
    const auto it = scripts_.find(key);
    if (it != scripts_.end() && it->second.remaining > 0) {
      --it->second.remaining;
      ++stats_.injected_scripted;
      decision.fail = true;
      decision.error =
          util::Error(it->second.code, "scripted fault for '" + key + "'");
      return decision;
    }
  }

  // One independent stream per (seed, key, attempt): the fault sequence a
  // key sees is a pure function of the seed, immune to thread interleaving.
  std::uint64_t sm = spec_.seed;
  sm ^= util::fnv1a64(key.data(), key.size());
  sm ^= attempt * 0x9e3779b97f4a7c15ULL;
  util::Rng rng(util::splitmix64(sm));

  if (rng.chance(spec_.p_unavailable)) {
    decision.fail = true;
    decision.error = util::unavailable("injected 503 for '" + key + "'");
  } else if (rng.chance(spec_.p_reset)) {
    decision.fail = true;
    decision.error = util::reset("injected connection reset for '" + key + "'");
  } else {
    if (rng.chance(spec_.p_slow)) decision.slow_ms = spec_.slow_ms;
    if (corruptible) {
      if (rng.chance(spec_.p_truncate)) {
        decision.truncate = true;
        decision.corrupt_at = rng();
      } else if (rng.chance(spec_.p_bitflip)) {
        decision.bitflip = true;
        decision.corrupt_at = rng();
      }
    }
  }

  std::lock_guard lock(mutex_);
  if (decision.fail) {
    if (decision.error.code() == util::ErrorCode::kUnavailable) {
      ++stats_.injected_unavailable;
    } else {
      ++stats_.injected_reset;
    }
  }
  if (decision.slow_ms > 0.0) {
    ++stats_.injected_slow;
    stats_.slow_ms_total += decision.slow_ms;
  }
  if (decision.truncate) ++stats_.injected_truncate;
  if (decision.bitflip) ++stats_.injected_bitflip;
  return decision;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::uint64_t FaultInjector::attempts(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = attempts_.find(key);
  return it == attempts_.end() ? 0 : it->second;
}

util::Result<std::string> FaultySource::fetch_manifest(
    const std::string& repository, const std::string& tag,
    bool authenticated) {
  auto decision = injector_.next(repository + ":" + tag, /*corruptible=*/false);
  if (decision.fail) return decision.error;
  if (decision.slow_ms > 0.0 && slow_hook_) slow_hook_(decision.slow_ms);
  return upstream_.fetch_manifest(repository, tag, authenticated);
}

util::Result<blob::BlobPtr> FaultySource::fetch_blob(
    const digest::Digest& digest) {
  auto decision = injector_.next(digest.to_string(), /*corruptible=*/true);
  if (decision.fail) return decision.error;
  if (decision.slow_ms > 0.0 && slow_hook_) slow_hook_(decision.slow_ms);
  auto blob = upstream_.fetch_blob(digest);
  if (!blob.ok() || blob.value()->empty()) return blob;

  // Corruption is applied to a private copy: other holders of the upstream
  // blob (the service's store, the downloader's cache) must not see it.
  if (decision.truncate) {
    const std::size_t keep = decision.corrupt_at % blob.value()->size();
    return std::make_shared<const std::string>(blob.value()->substr(0, keep));
  }
  if (decision.bitflip) {
    std::string copy(*blob.value());
    const std::uint64_t bit = decision.corrupt_at % (copy.size() * 8);
    copy[bit / 8] = static_cast<char>(copy[bit / 8] ^ (1u << (bit % 8)));
    return std::make_shared<const std::string>(std::move(copy));
  }
  return blob;
}

util::Result<SearchPage> FaultySearchBackend::try_page(
    const std::string& query, std::uint64_t page_number,
    std::size_t page_size) const {
  auto decision =
      injector_.next("page:" + query + ":" + std::to_string(page_number),
                     /*corruptible=*/false);
  if (decision.fail) return decision.error;
  return upstream_.try_page(query, page_number, page_size);
}

}  // namespace dockmine::registry
