// Network throttle decorator: turns the registry's simulated service-time
// model (CostModel accounting) into real wall-clock time.
//
// The in-process Service answers a blob fetch in microseconds, which makes
// the download stage nearly free and hides the property the paper's
// pipeline lived on: download latency can be overlapped with analysis CPU.
// ThrottledSource sleeps each request for `CostModel` time scaled by
// `scale`, so a staged-vs-streamed comparison measures real overlap instead
// of memcpy speed. It composes like the other decorators:
//
//   Downloader -> ThrottledSource -> [ResilientSource -> FaultySource ->] Service
#pragma once

#include <atomic>
#include <cstdint>

#include "dockmine/registry/service.h"

namespace dockmine::registry {

class ThrottledSource : public Source {
 public:
  /// `scale` multiplies the modeled cost: 1.0 sleeps the full modeled time
  /// (40 ms per request + ~9 ms/MB), 0.01 a hundredth of it. Non-positive
  /// scales disable sleeping entirely.
  ThrottledSource(Source& upstream, CostModel cost, double scale)
      : upstream_(upstream), cost_(cost), scale_(scale) {}

  util::Result<std::string> fetch_manifest(const std::string& repository,
                                           const std::string& tag,
                                           bool authenticated) override;
  util::Result<blob::BlobPtr> fetch_blob(const digest::Digest& digest) override;

  /// Total wall time spent sleeping, for bench reporting.
  double throttled_ms() const noexcept {
    return throttled_ms_.load(std::memory_order_relaxed);
  }

 private:
  void stall(double modeled_ms);

  Source& upstream_;
  CostModel cost_;
  double scale_;
  std::atomic<double> throttled_ms_{0.0};
};

}  // namespace dockmine::registry
