// Fault injection for the registry pull path.
//
// The paper's crawl ran for weeks against a flaky public service; what made
// the pipeline work was surviving the faults, not avoiding them. This file
// supplies the faults on demand: `FaultySource` decorates any
// `registry::Source` and injects seeded, fully deterministic transient
// errors and data corruption, so chaos tests can assert exact convergence
// ("same seed, same faults, same stats") instead of hoping a flaky network
// shows up. Five fault classes are modeled:
//
//   unavailable  HTTP 500/503-style "try again later"   -> ErrorCode::kUnavailable
//   reset        connection torn mid-exchange           -> ErrorCode::kReset
//   slow         request served, but late (counted;     -> no error
//                an optional hook can really stall)
//   truncate     blob delivered with its tail missing   -> no error (digest catches)
//   bitflip      blob delivered with one bit flipped    -> no error (digest catches)
//
// The last two corrupt *successfully delivered* content — the failure mode
// "Docker Does Not Guarantee Reproducibility" (Malka et al.) warns about —
// which is precisely why the downloader must verify every blob against its
// manifest digest rather than trust the transport.
//
// Determinism: each (request key, attempt number) pair maps to an
// independent RNG stream derived from the injector seed, so the fault
// sequence for a key does not depend on thread interleaving or on requests
// for other keys. Request keys are "<repository>:<tag>" for manifests and
// the digest string for blobs.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dockmine/registry/search.h"
#include "dockmine/registry/service.h"
#include "dockmine/util/error.h"
#include "dockmine/util/rng.h"

namespace dockmine::registry {

/// Per-fault-class injection probabilities, evaluated independently per
/// attempt in the order: scripted, unavailable, reset, slow, truncate,
/// bitflip. Corruption classes apply to blob fetches only (manifest bytes
/// are parsed, not digest-verified, so corrupting them would model a
/// failure class the real protocol detects differently).
struct FaultSpec {
  std::uint64_t seed = 1;
  double p_unavailable = 0.0;  ///< 500/503-style transient refusal
  double p_reset = 0.0;        ///< connection-reset-style transport error
  double p_slow = 0.0;         ///< delivered, but slowly
  double slow_ms = 250.0;      ///< modeled delay of one slow request
  double p_truncate = 0.0;     ///< blob tail cut off (blob fetches only)
  double p_bitflip = 0.0;      ///< one bit flipped (blob fetches only)
};

struct FaultStats {
  std::uint64_t requests = 0;
  std::uint64_t injected_unavailable = 0;
  std::uint64_t injected_reset = 0;
  std::uint64_t injected_slow = 0;
  std::uint64_t injected_truncate = 0;
  std::uint64_t injected_bitflip = 0;
  std::uint64_t injected_scripted = 0;
  double slow_ms_total = 0.0;

  std::uint64_t total_injected() const noexcept {
    return injected_unavailable + injected_reset + injected_truncate +
           injected_bitflip + injected_scripted;
  }
};

/// The decision engine: seeded probabilistic faults plus an exact script
/// mode ("fail the first N attempts for key K") for tests that need precise
/// failure placement. Thread-safe; shared by FaultySource and
/// FaultySearchBackend.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec = {}) : spec_(spec) {}

  /// Script mode: the next `attempts` requests for `key` fail with `code`
  /// (which should be a transient code unless the test wants a permanent
  /// failure). Scripted faults take precedence over probabilistic ones.
  void fail_next(const std::string& key, int attempts, util::ErrorCode code);

  /// The outcome of one attempt for `key`.
  struct Decision {
    bool fail = false;
    util::Error error;        ///< set when fail
    bool truncate = false;    ///< deliver corrupted content (blobs only)
    bool bitflip = false;
    std::uint64_t corrupt_at = 0;  ///< byte/bit position selector
    double slow_ms = 0.0;     ///< > 0: this request was slowed
  };

  /// Decide the fault for the next attempt of `key`. `corruptible` is true
  /// for blob fetches. Deterministic per (seed, key, attempt index).
  Decision next(const std::string& key, bool corruptible);

  FaultStats stats() const;

  /// Attempts observed for `key` so far (exposed for tests).
  std::uint64_t attempts(const std::string& key) const;

 private:
  struct Script {
    int remaining = 0;
    util::ErrorCode code = util::ErrorCode::kUnavailable;
  };

  FaultSpec spec_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::uint64_t> attempts_;
  std::unordered_map<std::string, Script> scripts_;
  FaultStats stats_;
};

/// Source decorator injecting faults between a consumer (downloader,
/// ResilientSource) and any upstream Source.
class FaultySource : public Source {
 public:
  FaultySource(Source& upstream, FaultSpec spec = {})
      : upstream_(upstream), injector_(spec) {}

  util::Result<std::string> fetch_manifest(const std::string& repository,
                                           const std::string& tag,
                                           bool authenticated) override;
  util::Result<blob::BlobPtr> fetch_blob(const digest::Digest& digest) override;

  FaultInjector& injector() noexcept { return injector_; }
  FaultStats stats() const { return injector_.stats(); }

  /// Optional hook invoked for slow requests with the modeled delay; by
  /// default slow requests are only counted, keeping tests fast.
  void set_slow_hook(std::function<void(double)> hook) {
    slow_hook_ = std::move(hook);
  }

 private:
  Source& upstream_;
  FaultInjector injector_;
  std::function<void(double)> slow_hook_;
};

/// SearchBackend decorator for crawler chaos tests: injects transient
/// errors into the fallible page path. Keys are "page:<query>:<number>".
class FaultySearchBackend : public SearchBackend {
 public:
  FaultySearchBackend(const SearchBackend& upstream, FaultSpec spec = {})
      : upstream_(upstream), injector_(spec) {}

  SearchPage page(const std::string& query, std::uint64_t page_number,
                  std::size_t page_size) const override {
    return upstream_.page(query, page_number, page_size);
  }

  util::Result<SearchPage> try_page(const std::string& query,
                                    std::uint64_t page_number,
                                    std::size_t page_size) const override;

  FaultInjector& injector() noexcept { return injector_; }
  FaultStats stats() const { return injector_.stats(); }

 private:
  const SearchBackend& upstream_;
  mutable FaultInjector injector_;
};

}  // namespace dockmine::registry
