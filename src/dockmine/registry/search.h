// Docker Hub search facade — what the paper's crawler scraped.
//
// "Listing non-official repositories requires web crawling because Docker
// Hub does not support an API to retrieve all repository names... The
// Crawler downloads all pages from the search results" (§III-A). The paper's
// raw crawl contained duplicate entries "introduced by Docker Hub indexing
// logic": 634,412 raw hits deduplicated to 457,627 repositories (factor
// ~1.386). This facade reproduces that behaviour: results are paginated and
// a configurable fraction of entries appears on more than one page.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/registry/service.h"
#include "dockmine/util/rng.h"

namespace dockmine::registry {

struct SearchHit {
  std::string repository;
  std::uint64_t pull_count = 0;
};

struct SearchPage {
  std::vector<SearchHit> hits;
  std::uint64_t page_number = 0;
  bool has_next = false;
};

/// Search interface the crawler consumes; implemented locally by
/// SearchIndex and over the wire by RemoteRegistry.
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;
  virtual SearchPage page(const std::string& query, std::uint64_t page_number,
                          std::size_t page_size) const = 0;

  /// Fallible variant: backends with a transport underneath (RemoteRegistry,
  /// FaultySearchBackend) surface transient errors here so the crawler can
  /// retry a page instead of silently treating it as empty. The default
  /// wraps the infallible in-process path.
  virtual util::Result<SearchPage> try_page(const std::string& query,
                                            std::uint64_t page_number,
                                            std::size_t page_size) const {
    return page(query, page_number, page_size);
  }
};

class SearchIndex : public SearchBackend {
 public:
  /// Build the index over the repositories currently in `service`.
  /// `duplicate_factor` is raw-hits / distinct-repos (paper: ~1.386);
  /// duplicates are spread deterministically from `seed`.
  SearchIndex(const Service& service, double duplicate_factor = 1.386,
              std::uint64_t seed = 17);

  /// Fetch one result page. `query == "/"` matches non-official
  /// repositories (the paper's trick for listing every user repo);
  /// an empty query matches everything; anything else is a substring match.
  SearchPage page(const std::string& query, std::uint64_t page_number,
                  std::size_t page_size) const override;

  std::uint64_t raw_entry_count() const noexcept { return entries_.size(); }

 private:
  std::vector<SearchHit> entries_;  // shuffled, with injected duplicates
};

}  // namespace dockmine::registry
