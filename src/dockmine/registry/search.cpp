#include "dockmine/registry/search.h"

#include <algorithm>

#include "dockmine/stats/sampling.h"

namespace dockmine::registry {

SearchIndex::SearchIndex(const Service& service, double duplicate_factor,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<std::string> names = service.repository_names();
  entries_.reserve(static_cast<std::size_t>(
      static_cast<double>(names.size()) * std::max(1.0, duplicate_factor)));
  for (const auto& name : names) {
    std::uint64_t pulls = 0;
    if (auto repo = service.find_repository(name)) pulls = repo->pull_count;
    entries_.push_back(SearchHit{name, pulls});
  }
  // Inject duplicates: each extra entry repeats a uniformly chosen
  // repository, mimicking index shards answering overlapping ranges.
  const std::size_t distinct = entries_.size();
  const auto extra = static_cast<std::size_t>(
      static_cast<double>(distinct) * (std::max(1.0, duplicate_factor) - 1.0));
  for (std::size_t i = 0; i < extra; ++i) {
    entries_.push_back(entries_[rng.uniform(distinct)]);
  }
  stats::shuffle(entries_, rng);
}

SearchPage SearchIndex::page(const std::string& query,
                             std::uint64_t page_number,
                             std::size_t page_size) const {
  SearchPage out;
  out.page_number = page_number;
  if (page_size == 0) return out;
  auto matches = [&](const SearchHit& hit) {
    if (query.empty()) return true;
    if (query == "/") return hit.repository.find('/') != std::string::npos;
    return hit.repository.find(query) != std::string::npos;
  };
  // Scan with skipping; acceptable because crawls read pages sequentially
  // and the index fits memory (at full Docker Hub scale a real engine
  // would keep per-query cursors).
  std::uint64_t to_skip = page_number * page_size;
  for (const auto& entry : entries_) {
    if (!matches(entry)) continue;
    if (to_skip > 0) {
      --to_skip;
      continue;
    }
    if (out.hits.size() == page_size) {
      out.has_next = true;
      break;
    }
    out.hits.push_back(entry);
  }
  return out;
}

}  // namespace dockmine::registry
