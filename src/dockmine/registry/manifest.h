// Manifest <-> JSON codec (Docker image manifest schema v2 subset).
// Manifests are stored and served as JSON blobs and content-addressed by
// the digest of their serialized bytes, as in the real registry.
#pragma once

#include <string>

#include "dockmine/registry/model.h"
#include "dockmine/util/error.h"

namespace dockmine::registry {

/// Serialize to the canonical (compact, stable member order) JSON form.
std::string manifest_to_json(const Manifest& manifest);

/// Parse a manifest JSON document. Validates schemaVersion, mediaType, and
/// every layer digest.
util::Result<Manifest> manifest_from_json(std::string_view json_text);

}  // namespace dockmine::registry
