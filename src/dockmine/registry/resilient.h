// Resilient registry client: the decorator that let the paper's crawl
// survive weeks of a flaky public service.
//
// `ResilientSource` wraps any `registry::Source` and adds three layers of
// defense, composed bottom-up:
//
//   1. Retry with capped exponential backoff + decorrelated jitter
//      (next = min(cap, uniform(base, 3*prev)) — the AWS "decorrelated
//      jitter" recipe, which avoids both thundering herds and the lock-step
//      sleeps of plain exponential backoff). Only *transient* error
//      categories (util::is_retryable) are retried; 401/404 are facts about
//      the repository and returned immediately.
//   2. Attempt limits: a per-request cap (`max_attempts`) and a global
//      retry budget shared across all requests, so a systemically sick
//      upstream cannot multiply the run's request volume unboundedly.
//   3. A circuit breaker per scope (one per repository for manifest
//      requests; one shared scope for blob fetches, whose V2 endpoint is
//      repository-agnostic). After `failure_threshold` consecutive
//      transient failures the breaker opens and requests fail fast with
//      kUnavailable for `cooldown_ms`, then a half-open probe decides
//      between closing and re-opening. A dead upstream thus degrades to
//      cheap rejections instead of stalling every worker in backoff sleeps.
//
// Time is injectable (`TimeSource`) so tests and the chaos harness run the
// whole machinery — backoff sleeps, breaker cooldowns — on a virtual clock
// in microseconds of real time. All decisions draw from per-key RNG streams
// derived from one seed, making two runs with the same seed produce
// identical `ResilienceStats`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dockmine/registry/service.h"
#include "dockmine/util/error.h"
#include "dockmine/util/rng.h"

namespace dockmine::registry {

struct RetryPolicy {
  int max_attempts = 5;           ///< per request, including the first
  double base_delay_ms = 25.0;    ///< backoff lower bound
  double max_delay_ms = 2000.0;   ///< backoff cap
  /// Global retry allowance across the decorator's lifetime. When spent,
  /// further failures return immediately (kExhausted). Sized for
  /// crawl-scale runs by default.
  std::uint64_t retry_budget = 1'000'000;
};

struct BreakerPolicy {
  int failure_threshold = 8;      ///< consecutive transient failures to open
  double cooldown_ms = 1000.0;    ///< open duration before half-open probe
  int close_threshold = 1;        ///< half-open successes needed to close
};

struct ResilienceStats {
  std::uint64_t requests = 0;           ///< calls into the decorator
  std::uint64_t attempts = 0;           ///< upstream calls actually made
  std::uint64_t retries = 0;            ///< attempts beyond the first
  std::uint64_t successes = 0;
  std::uint64_t permanent_failures = 0; ///< 401/404/...: returned untried
  std::uint64_t attempts_exhausted = 0; ///< gave up: per-request cap
  std::uint64_t budget_exhausted = 0;   ///< gave up: global budget
  std::uint64_t breaker_rejections = 0; ///< failed fast while open
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_closes = 0;
  double backoff_ms = 0.0;              ///< total time spent backing off

  friend bool operator==(const ResilienceStats& a,
                         const ResilienceStats& b) noexcept {
    return a.requests == b.requests && a.attempts == b.attempts &&
           a.retries == b.retries && a.successes == b.successes &&
           a.permanent_failures == b.permanent_failures &&
           a.attempts_exhausted == b.attempts_exhausted &&
           a.budget_exhausted == b.budget_exhausted &&
           a.breaker_rejections == b.breaker_rejections &&
           a.breaker_opens == b.breaker_opens &&
           a.breaker_closes == b.breaker_closes &&
           a.backoff_ms == b.backoff_ms;
  }
};

/// Decorrelated-jitter backoff step: uniform in [base, 3*prev], capped.
/// `prev_ms == 0` (first retry) yields uniform in [base, 3*base].
double decorrelated_jitter(double base_ms, double cap_ms, double prev_ms,
                           util::Rng& rng) noexcept;

/// Injectable clock + sleep. The default wires the steady clock and a real
/// thread sleep; tests substitute a virtual clock whose sleep() just
/// advances now().
struct TimeSource {
  std::function<double()> now_ms;
  std::function<void(double)> sleep_ms;
  static TimeSource real();
};

/// Consecutive-failure circuit breaker (closed -> open -> half-open),
/// exposed as its own class so state transitions are unit-testable without
/// a Source underneath. Not internally synchronized; ResilientSource guards
/// each instance with its state mutex.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerPolicy policy = {}) : policy_(policy) {}

  /// May this request proceed? Transitions open -> half-open once the
  /// cooldown has elapsed.
  bool allow(double now_ms);

  /// Returns true when this success closed a half-open breaker.
  bool on_success();

  /// Returns true when this failure opened (or re-opened) the breaker.
  bool on_failure(double now_ms);

  State state() const noexcept { return state_; }

 private:
  BreakerPolicy policy_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double open_until_ms_ = 0.0;
};

/// The resilient decorator. Thread-safe; a single instance serves the whole
/// downloader worker pool.
class ResilientSource : public Source {
 public:
  ResilientSource(Source& upstream, RetryPolicy retry = {},
                  BreakerPolicy breaker = {}, std::uint64_t seed = 1,
                  TimeSource time = TimeSource::real())
      : upstream_(upstream),
        retry_(retry),
        breaker_policy_(breaker),
        seed_(seed),
        time_(std::move(time)) {}

  util::Result<std::string> fetch_manifest(const std::string& repository,
                                           const std::string& tag,
                                           bool authenticated) override;
  util::Result<blob::BlobPtr> fetch_blob(const digest::Digest& digest) override;

  ResilienceStats stats() const;

  /// Breaker state for a scope ("repo/<name>" or "blobs"); for tests and
  /// operational introspection.
  CircuitBreaker::State breaker_state(const std::string& scope) const;

 private:
  /// One request chain: retries + backoff for a single fetch_* call.
  /// Backoff randomness is keyed by (seed, request key, per-key call
  /// number), never by shared stream order, so ResilienceStats stay
  /// bit-identical across thread interleavings.
  template <typename T>
  util::Result<T> execute(const std::string& key, const std::string& scope,
                          const std::function<util::Result<T>()>& attempt_fn);

  CircuitBreaker& breaker_locked(const std::string& scope);

  Source& upstream_;
  RetryPolicy retry_;
  BreakerPolicy breaker_policy_;
  std::uint64_t seed_;
  TimeSource time_;
  mutable std::mutex mutex_;  // guards maps, stats_, budget accounting
  std::unordered_map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::unordered_map<std::string, std::uint64_t> calls_;  ///< per-key counter
  ResilienceStats stats_;
  std::uint64_t budget_spent_ = 0;
};

}  // namespace dockmine::registry
