#include "dockmine/registry/resilient.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "dockmine/obs/obs.h"

namespace dockmine::registry {

namespace {

struct ResilientMetrics {
  obs::Counter& requests;
  obs::Counter& attempts;
  obs::Counter& retries;
  obs::Counter& successes;
  obs::Counter& permanent_failures;
  obs::Counter& attempts_exhausted;
  obs::Counter& budget_exhausted;
  obs::Counter& breaker_opens;
  obs::Counter& breaker_closes;
  obs::Counter& breaker_rejections;
  obs::Histogram& backoff_ms;

  static ResilientMetrics& get() {
    auto& reg = obs::Registry::global();
    static ResilientMetrics m{
        reg.counter("dockmine_resilient_requests_total"),
        reg.counter("dockmine_resilient_attempts_total"),
        reg.counter("dockmine_resilient_retries_total"),
        reg.counter("dockmine_resilient_successes_total"),
        reg.counter("dockmine_resilient_permanent_failures_total"),
        reg.counter("dockmine_resilient_attempts_exhausted_total"),
        reg.counter("dockmine_resilient_budget_exhausted_total"),
        reg.counter("dockmine_resilient_breaker_opens_total"),
        reg.counter("dockmine_resilient_breaker_closes_total"),
        reg.counter("dockmine_resilient_breaker_rejections_total"),
        reg.histogram("dockmine_resilient_backoff_ms")};
    return m;
  }
};

/// Per-fault-class tally, labeled by the transient/permanent taxonomy's
/// code name. Lazily interned (error paths are cold by definition).
void count_error_class(util::ErrorCode code) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .counter("dockmine_resilient_errors_total{code=\"" +
               std::string(util::to_string(code)) + "\"}")
      .add();
}

}  // namespace

double decorrelated_jitter(double base_ms, double cap_ms, double prev_ms,
                           util::Rng& rng) noexcept {
  const double anchor = prev_ms > 0.0 ? prev_ms : base_ms;
  const double hi = std::max(base_ms, 3.0 * anchor);
  const double drawn = base_ms + (hi - base_ms) * rng.uniform01();
  return std::min(cap_ms, drawn);
}

TimeSource TimeSource::real() {
  return TimeSource{
      [] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
      },
      [](double ms) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }};
}

bool CircuitBreaker::allow(double now_ms) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms >= open_until_ms_) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        return true;
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

bool CircuitBreaker::on_success() {
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen &&
      ++half_open_successes_ >= policy_.close_threshold) {
    state_ = State::kClosed;
    return true;
  }
  return false;
}

bool CircuitBreaker::on_failure(double now_ms) {
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= policy_.failure_threshold)) {
    state_ = State::kOpen;
    open_until_ms_ = now_ms + policy_.cooldown_ms;
    return true;
  }
  return false;
}

CircuitBreaker& ResilientSource::breaker_locked(const std::string& scope) {
  auto& slot = breakers_[scope];
  if (!slot) slot = std::make_unique<CircuitBreaker>(breaker_policy_);
  return *slot;
}

template <typename T>
util::Result<T> ResilientSource::execute(
    const std::string& key, const std::string& scope,
    const std::function<util::Result<T>()>& attempt_fn) {
  ResilientMetrics& metrics = ResilientMetrics::get();
  metrics.requests.add();
  std::uint64_t call_no = 0;
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    call_no = ++calls_[key];
  }
  // Private backoff stream for this request chain.
  std::uint64_t sm = seed_;
  sm ^= util::fnv1a64(key.data(), key.size());
  sm ^= call_no * 0x9e3779b97f4a7c15ULL;
  util::Rng rng(util::splitmix64(sm));

  util::Error last_error = util::internal("no attempt made");
  double prev_delay_ms = 0.0;
  for (int attempt = 1;; ++attempt) {
    bool rejected = false;
    {
      std::lock_guard lock(mutex_);
      if (!breaker_locked(scope).allow(time_.now_ms())) {
        ++stats_.breaker_rejections;
        metrics.breaker_rejections.add();
        rejected = true;
      }
    }
    if (rejected) {
      last_error = util::unavailable("circuit open for scope '" + scope + "'");
    } else {
      metrics.attempts.add();
      if (attempt > 1) metrics.retries.add();
      {
        std::lock_guard lock(mutex_);
        ++stats_.attempts;
        if (attempt > 1) ++stats_.retries;
      }
      auto result = attempt_fn();
      if (result.ok()) {
        metrics.successes.add();
        std::lock_guard lock(mutex_);
        ++stats_.successes;
        if (breaker_locked(scope).on_success()) {
          ++stats_.breaker_closes;
          metrics.breaker_closes.add();
        }
        return result;
      }
      last_error = std::move(result).error();
      count_error_class(last_error.code());
      if (!last_error.retryable()) {
        // A well-formed negative answer (401/404/...): the upstream is
        // healthy, so the breaker is untouched and retrying is pointless.
        metrics.permanent_failures.add();
        std::lock_guard lock(mutex_);
        ++stats_.permanent_failures;
        return last_error;
      }
      std::lock_guard lock(mutex_);
      if (breaker_locked(scope).on_failure(time_.now_ms())) {
        ++stats_.breaker_opens;
        metrics.breaker_opens.add();
      }
    }

    if (attempt >= retry_.max_attempts) {
      metrics.attempts_exhausted.add();
      std::lock_guard lock(mutex_);
      ++stats_.attempts_exhausted;
      return last_error;
    }
    double delay_ms = 0.0;
    {
      std::lock_guard lock(mutex_);
      if (!rejected) {
        // Breaker rejections are free (no upstream traffic); real retries
        // draw down the shared budget.
        if (budget_spent_ >= retry_.retry_budget) {
          ++stats_.budget_exhausted;
          metrics.budget_exhausted.add();
          return last_error;
        }
        ++budget_spent_;
      }
      delay_ms = decorrelated_jitter(retry_.base_delay_ms, retry_.max_delay_ms,
                                     prev_delay_ms, rng);
      // Quantize to 1/1024 ms: dyadic values sum exactly, so the accumulated
      // backoff_ms is independent of the order worker threads land here and
      // same-seed runs report bit-identical stats.
      delay_ms = std::round(delay_ms * 1024.0) / 1024.0;
      stats_.backoff_ms += delay_ms;
    }
    metrics.backoff_ms.observe(delay_ms);
    prev_delay_ms = delay_ms;
    time_.sleep_ms(delay_ms);
  }
}

util::Result<std::string> ResilientSource::fetch_manifest(
    const std::string& repository, const std::string& tag,
    bool authenticated) {
  return execute<std::string>(
      "m:" + repository + ":" + tag, "repo/" + repository,
      [&]() { return upstream_.fetch_manifest(repository, tag, authenticated); });
}

util::Result<blob::BlobPtr> ResilientSource::fetch_blob(
    const digest::Digest& digest) {
  return execute<blob::BlobPtr>("b:" + digest.to_string(), "blobs",
                                [&]() { return upstream_.fetch_blob(digest); });
}

ResilienceStats ResilientSource::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

CircuitBreaker::State ResilientSource::breaker_state(
    const std::string& scope) const {
  std::lock_guard lock(mutex_);
  const auto it = breakers_.find(scope);
  return it == breakers_.end() ? CircuitBreaker::State::kClosed
                               : it->second->state();
}

}  // namespace dockmine::registry
