#include "dockmine/registry/resilient.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace dockmine::registry {

double decorrelated_jitter(double base_ms, double cap_ms, double prev_ms,
                           util::Rng& rng) noexcept {
  const double anchor = prev_ms > 0.0 ? prev_ms : base_ms;
  const double hi = std::max(base_ms, 3.0 * anchor);
  const double drawn = base_ms + (hi - base_ms) * rng.uniform01();
  return std::min(cap_ms, drawn);
}

TimeSource TimeSource::real() {
  return TimeSource{
      [] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
      },
      [](double ms) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }};
}

bool CircuitBreaker::allow(double now_ms) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms >= open_until_ms_) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        return true;
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

bool CircuitBreaker::on_success() {
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen &&
      ++half_open_successes_ >= policy_.close_threshold) {
    state_ = State::kClosed;
    return true;
  }
  return false;
}

bool CircuitBreaker::on_failure(double now_ms) {
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= policy_.failure_threshold)) {
    state_ = State::kOpen;
    open_until_ms_ = now_ms + policy_.cooldown_ms;
    return true;
  }
  return false;
}

CircuitBreaker& ResilientSource::breaker_locked(const std::string& scope) {
  auto& slot = breakers_[scope];
  if (!slot) slot = std::make_unique<CircuitBreaker>(breaker_policy_);
  return *slot;
}

template <typename T>
util::Result<T> ResilientSource::execute(
    const std::string& key, const std::string& scope,
    const std::function<util::Result<T>()>& attempt_fn) {
  std::uint64_t call_no = 0;
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    call_no = ++calls_[key];
  }
  // Private backoff stream for this request chain.
  std::uint64_t sm = seed_;
  sm ^= util::fnv1a64(key.data(), key.size());
  sm ^= call_no * 0x9e3779b97f4a7c15ULL;
  util::Rng rng(util::splitmix64(sm));

  util::Error last_error = util::internal("no attempt made");
  double prev_delay_ms = 0.0;
  for (int attempt = 1;; ++attempt) {
    bool rejected = false;
    {
      std::lock_guard lock(mutex_);
      if (!breaker_locked(scope).allow(time_.now_ms())) {
        ++stats_.breaker_rejections;
        rejected = true;
      }
    }
    if (rejected) {
      last_error = util::unavailable("circuit open for scope '" + scope + "'");
    } else {
      {
        std::lock_guard lock(mutex_);
        ++stats_.attempts;
        if (attempt > 1) ++stats_.retries;
      }
      auto result = attempt_fn();
      if (result.ok()) {
        std::lock_guard lock(mutex_);
        ++stats_.successes;
        if (breaker_locked(scope).on_success()) ++stats_.breaker_closes;
        return result;
      }
      last_error = std::move(result).error();
      if (!last_error.retryable()) {
        // A well-formed negative answer (401/404/...): the upstream is
        // healthy, so the breaker is untouched and retrying is pointless.
        std::lock_guard lock(mutex_);
        ++stats_.permanent_failures;
        return last_error;
      }
      std::lock_guard lock(mutex_);
      if (breaker_locked(scope).on_failure(time_.now_ms())) {
        ++stats_.breaker_opens;
      }
    }

    if (attempt >= retry_.max_attempts) {
      std::lock_guard lock(mutex_);
      ++stats_.attempts_exhausted;
      return last_error;
    }
    double delay_ms = 0.0;
    {
      std::lock_guard lock(mutex_);
      if (!rejected) {
        // Breaker rejections are free (no upstream traffic); real retries
        // draw down the shared budget.
        if (budget_spent_ >= retry_.retry_budget) {
          ++stats_.budget_exhausted;
          return last_error;
        }
        ++budget_spent_;
      }
      delay_ms = decorrelated_jitter(retry_.base_delay_ms, retry_.max_delay_ms,
                                     prev_delay_ms, rng);
      // Quantize to 1/1024 ms: dyadic values sum exactly, so the accumulated
      // backoff_ms is independent of the order worker threads land here and
      // same-seed runs report bit-identical stats.
      delay_ms = std::round(delay_ms * 1024.0) / 1024.0;
      stats_.backoff_ms += delay_ms;
    }
    prev_delay_ms = delay_ms;
    time_.sleep_ms(delay_ms);
  }
}

util::Result<std::string> ResilientSource::fetch_manifest(
    const std::string& repository, const std::string& tag,
    bool authenticated) {
  return execute<std::string>(
      "m:" + repository + ":" + tag, "repo/" + repository,
      [&]() { return upstream_.fetch_manifest(repository, tag, authenticated); });
}

util::Result<blob::BlobPtr> ResilientSource::fetch_blob(
    const digest::Digest& digest) {
  return execute<blob::BlobPtr>("b:" + digest.to_string(), "blobs",
                                [&]() { return upstream_.fetch_blob(digest); });
}

ResilienceStats ResilientSource::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

CircuitBreaker::State ResilientSource::breaker_state(
    const std::string& scope) const {
  std::lock_guard lock(mutex_);
  const auto it = breakers_.find(scope);
  return it == breakers_.end() ? CircuitBreaker::State::kClosed
                               : it->second->state();
}

}  // namespace dockmine::registry
