#include "dockmine/registry/http_gateway.h"

#include "dockmine/json/json.h"

namespace dockmine::registry {

namespace {

http::Response error_response(int status, std::string_view code,
                              const std::string& message) {
  json::Value err = json::Value::object();
  err.set("code", std::string(code));
  err.set("message", message);
  json::Value errors = json::Value::array();
  errors.push_back(std::move(err));
  json::Value root = json::Value::object();
  root.set("errors", std::move(errors));
  http::Response response = http::Response::make(status, root.dump());
  if (status == 401) {
    response.headers.emplace_back("Www-Authenticate",
                                  "Bearer realm=\"dockmine\"");
  }
  return response;
}

/// Extract the error message out of a gateway error body (best effort).
std::string error_message(const http::Response& response) {
  auto doc = json::parse(response.body);
  if (doc.ok() && doc.value()["errors"].is_array() &&
      doc.value()["errors"].size() > 0) {
    return doc.value()["errors"].at(0)["message"].as_string();
  }
  return "http status " + std::to_string(response.status);
}

}  // namespace

http::Response HttpGateway::handle(const http::Request& request) const {
  const bool is_get = request.method == "GET";
  const bool is_put = request.method == "PUT";
  if (!is_get && !is_put) {
    return error_response(405, "UNSUPPORTED", "only GET and PUT supported");
  }
  const std::string_view path = request.path();

  if (path == "/v2/" || path == "/v2") {
    return is_get ? http::Response::make(200, "{}")
                  : error_response(405, "UNSUPPORTED", "GET only");
  }
  if (path.rfind("/v2/", 0) == 0) {
    // /v2/<name>/manifests/<ref>  |  /v2/<name>/blobs/<digest>
    const std::string_view rest = path.substr(4);
    const std::size_t manifests = rest.rfind("/manifests/");
    if (manifests != std::string_view::npos) {
      const std::string name(rest.substr(0, manifests));
      const std::string reference(rest.substr(manifests + 11));
      return is_get ? handle_manifest(request, name, reference)
                    : handle_manifest_put(request, name, reference);
    }
    const std::size_t blobs = rest.rfind("/blobs/");
    if (blobs != std::string_view::npos) {
      const std::string digest_text(rest.substr(blobs + 7));
      return is_get ? handle_blob(digest_text)
                    : handle_blob_put(request, digest_text);
    }
    return error_response(404, "UNSUPPORTED", "unknown /v2 route");
  }
  if (path == "/v1/search" && is_get) {
    return handle_search(request);
  }
  return error_response(404, "UNSUPPORTED", "unknown route");
}

http::Response HttpGateway::handle_blob_put(
    const http::Request& request, const std::string& digest_text) const {
  auto digest = digest::Digest::parse(digest_text);
  if (!digest.ok()) {
    return error_response(400, "DIGEST_INVALID", digest.error().message());
  }
  // Verify content addressing before admitting the blob.
  if (digest::Digest::of(request.body) != digest.value()) {
    return error_response(400, "DIGEST_INVALID",
                          "body does not hash to the given digest");
  }
  auto stored = service_.push_blob_with_digest(digest.value(), request.body);
  if (!stored.ok()) {
    return error_response(500, "INTERNAL", stored.error().message());
  }
  http::Response response = http::Response::make(201, "{}");
  response.reason = "Created";
  response.headers.emplace_back("Docker-Content-Digest", digest_text);
  return response;
}

http::Response HttpGateway::handle_manifest_put(
    const http::Request& request, const std::string& name,
    const std::string& reference) const {
  auto manifest = manifest_from_json(request.body);
  if (!manifest.ok()) {
    return error_response(400, "MANIFEST_INVALID",
                          manifest.error().message());
  }
  // The path, not the body, names the repository/tag being pushed.
  manifest.value().repository = name;
  manifest.value().tag = reference;
  // Every referenced layer must already be uploaded (the real protocol's
  // rule as well).
  for (const auto& layer : manifest.value().layers) {
    if (!service_.stat_blob(layer.digest).ok()) {
      return error_response(400, "MANIFEST_BLOB_UNKNOWN",
                            "layer " + layer.digest.short_hex() +
                                " has not been uploaded");
    }
  }
  auto pushed = service_.push_manifest(manifest.value());
  if (!pushed.ok()) {
    return error_response(400, "MANIFEST_INVALID", pushed.error().message());
  }
  http::Response response = http::Response::make(201, "{}");
  response.reason = "Created";
  return response;
}

http::Response HttpGateway::handle_manifest(const http::Request& request,
                                            const std::string& name,
                                            const std::string& reference) const {
  const bool authenticated =
      !http::find_header(request.headers, "Authorization").empty();
  auto manifest = service_.get_manifest(name, reference, authenticated);
  if (!manifest.ok()) {
    switch (manifest.error().code()) {
      case util::ErrorCode::kUnauthorized:
        return error_response(401, "UNAUTHORIZED", manifest.error().message());
      case util::ErrorCode::kNotFound:
        return error_response(404, "MANIFEST_UNKNOWN",
                              manifest.error().message());
      default:
        return error_response(500, "INTERNAL", manifest.error().message());
    }
  }
  http::Response response = http::Response::make(
      200, std::move(manifest).value(),
      "application/vnd.docker.distribution.manifest.v2+json");
  return response;
}

http::Response HttpGateway::handle_blob(const std::string& digest_text) const {
  auto digest = digest::Digest::parse(digest_text);
  if (!digest.ok()) {
    return error_response(400, "DIGEST_INVALID", digest.error().message());
  }
  auto blob = service_.get_blob(digest.value());
  if (!blob.ok()) {
    return error_response(404, "BLOB_UNKNOWN", blob.error().message());
  }
  http::Response response =
      http::Response::make(200, std::string(*blob.value()),
                           "application/octet-stream");
  response.headers.emplace_back("Docker-Content-Digest", digest_text);
  return response;
}

http::Response HttpGateway::handle_search(const http::Request& request) const {
  if (search_ == nullptr) {
    return error_response(404, "UNSUPPORTED", "search not enabled");
  }
  const std::string query = request.query_param("q");
  const std::string page_text = request.query_param("page");
  const std::string size_text = request.query_param("page_size");
  const std::uint64_t page_number =
      page_text.empty() ? 0 : std::strtoull(page_text.c_str(), nullptr, 10);
  const std::size_t page_size =
      size_text.empty() ? 100 : std::strtoull(size_text.c_str(), nullptr, 10);

  const SearchPage page = search_->page(query, page_number, page_size);
  json::Value results = json::Value::array();
  for (const SearchHit& hit : page.hits) {
    json::Value entry = json::Value::object();
    entry.set("name", hit.repository);
    entry.set("pull_count", hit.pull_count);
    results.push_back(std::move(entry));
  }
  json::Value root = json::Value::object();
  root.set("page", page.page_number);
  root.set("has_next", page.has_next);
  root.set("results", std::move(results));
  return http::Response::make(200, root.dump());
}

util::Result<std::unique_ptr<http::Server>> HttpGateway::serve(
    std::uint16_t port, std::size_t workers) const {
  auto server = std::make_unique<http::Server>(
      [this](const http::Request& request) { return handle(request); }, port,
      workers);
  auto started = server->start();
  if (!started.ok()) return started.error();
  return server;
}

// ---- client side ----

util::Result<http::Response> RemoteRegistry::get(const std::string& target,
                                                 bool authenticated) const {
  http::Request request;
  request.method = "GET";
  request.target = target;
  request.headers.emplace_back("Host", "127.0.0.1");
  if (authenticated && !token_.empty()) {
    request.headers.emplace_back("Authorization", "Bearer " + token_);
  } else if (authenticated) {
    request.headers.emplace_back("Authorization", "Bearer anonymous-upgrade");
  }
  return client_.request(request);
}

util::Result<std::string> RemoteRegistry::fetch_manifest(
    const std::string& repository, const std::string& tag,
    bool authenticated) {
  auto response = get("/v2/" + repository + "/manifests/" + tag, authenticated);
  if (!response.ok()) return std::move(response).error();
  switch (response.value().status) {
    case 200: return std::move(response.value().body);
    case 401: return util::unauthorized(error_message(response.value()));
    case 404: return util::not_found(error_message(response.value()));
    default:
      if (response.value().status >= 500) {
        return util::unavailable("manifest fetch: " +
                                 error_message(response.value()));
      }
      return util::internal("manifest fetch failed: " +
                            error_message(response.value()));
  }
}

util::Result<blob::BlobPtr> RemoteRegistry::fetch_blob(
    const digest::Digest& digest) {
  auto response = get("/v2/any/blobs/" + digest.to_string(), false);
  if (!response.ok()) return std::move(response).error();
  if (response.value().status >= 500) {
    return util::unavailable("blob fetch: " + error_message(response.value()));
  }
  if (response.value().status != 200) {
    return util::not_found(error_message(response.value()));
  }
  return std::make_shared<const std::string>(
      std::move(response.value().body));
}

SearchPage RemoteRegistry::page(const std::string& query,
                                std::uint64_t page_number,
                                std::size_t page_size) const {
  auto result = try_page(query, page_number, page_size);
  if (result.ok()) return std::move(result).value();
  SearchPage out;
  out.page_number = page_number;
  return out;
}

util::Result<SearchPage> RemoteRegistry::try_page(const std::string& query,
                                                  std::uint64_t page_number,
                                                  std::size_t page_size) const {
  SearchPage out;
  out.page_number = page_number;
  auto response = get("/v1/search?q=" + query +
                          "&page=" + std::to_string(page_number) +
                          "&page_size=" + std::to_string(page_size),
                      false);
  if (!response.ok()) return std::move(response).error();
  if (response.value().status >= 500) {
    return util::unavailable("search: http status " +
                             std::to_string(response.value().status));
  }
  if (response.value().status != 200) {
    return util::not_found("search: http status " +
                           std::to_string(response.value().status));
  }
  auto doc = json::parse(response.value().body);
  if (!doc.ok()) return std::move(doc).error();
  out.has_next = doc.value()["has_next"].as_bool();
  for (const json::Value& entry : doc.value()["results"].items()) {
    out.hits.push_back(SearchHit{entry["name"].as_string(),
                                 entry["pull_count"].as_uint()});
  }
  return out;
}

util::Status RemoteRegistry::push_blob(const digest::Digest& digest,
                                       const std::string& content) {
  http::Request request;
  request.method = "PUT";
  request.target = "/v2/push/blobs/" + digest.to_string();
  request.headers.emplace_back("Host", "127.0.0.1");
  request.headers.emplace_back("Content-Type", "application/octet-stream");
  request.body = content;
  auto response = client_.request(request);
  if (!response.ok()) return std::move(response).error();
  if (response.value().status != 201) {
    return util::internal("blob push failed: " +
                          error_message(response.value()));
  }
  return util::Status::success();
}

util::Status RemoteRegistry::push_manifest(const std::string& repository,
                                           const std::string& tag,
                                           const std::string& manifest_json) {
  http::Request request;
  request.method = "PUT";
  request.target = "/v2/" + repository + "/manifests/" + tag;
  request.headers.emplace_back("Host", "127.0.0.1");
  request.headers.emplace_back(
      "Content-Type", "application/vnd.docker.distribution.manifest.v2+json");
  request.body = manifest_json;
  auto response = client_.request(request);
  if (!response.ok()) return std::move(response).error();
  if (response.value().status != 201) {
    return util::internal("manifest push failed: " +
                          error_message(response.value()));
  }
  return util::Status::success();
}

util::Status RemoteRegistry::ping() {
  auto response = get("/v2/", false);
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return util::internal("registry ping returned status " +
                          std::to_string(response.value().status));
  }
  return util::Status::success();
}

}  // namespace dockmine::registry
