// Work-queue thread pool and parallel loop helpers.
//
// The downloader fetches manifests and layers concurrently (the paper's
// downloader "can download multiple images simultaneously and fetch the
// individual layers of an image in parallel", §III-B) and the analyzer
// profiles layers in parallel. Both sit on this pool. Design follows the
// classic bounded-MPMC + worker model: tasks are type-erased closures, the
// queue applies backpressure so a fast producer cannot buffer the whole
// dataset, and shutdown drains remaining work.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace dockmine::util {

/// Bounded multi-producer/multi-consumer FIFO. Blocking push/pop with
/// close() for shutdown. Mutex+condvar implementation: simple, correct, and
/// fully adequate here — queue operations are ~microseconds while the tasks
/// they carry (untar + classify a layer) are ~milliseconds.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    peak_ = std::max(peak_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. False if full or closed (item left untouched so the
  /// caller can fall back to the blocking push and count the stall).
  bool try_push(T& item) {
    std::unique_lock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    peak_ = std::max(peak_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Empty optional once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// High-water mark of items resident at once — the measured peak blob
  /// residency of a streaming run (never exceeds capacity()).
  std::size_t peak() const {
    std::lock_guard lock(mutex_);
    return peak_;
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

/// Fixed-size worker pool.
class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0, std::size_t queue_capacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; blocks if the queue is full. No-op after shutdown().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Stop accepting work, drain the queue, join workers. Idempotent.
  void shutdown();

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;  // queued + executing, guarded by idle_mutex_
  bool shut_down_ = false;
};

/// Run `body(i)` for i in [begin, end) across `pool`, in contiguous chunks.
/// Blocks until all iterations complete. `grain` bounds chunk size so skewed
/// per-item cost (one 826k-file layer among thousands of tiny ones) cannot
/// serialize the loop.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body);

}  // namespace dockmine::util
