#include "dockmine/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <latch>

namespace dockmine::util {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queue_(queue_capacity) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(idle_mutex_);
    if (shut_down_) return;
    ++in_flight_;
  }
  if (!queue_.push(std::move(task))) {
    // Queue closed between the check and the push: undo the accounting.
    std::lock_guard lock(idle_mutex_);
    --in_flight_;
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(idle_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Let queued tasks finish: workers keep draining until pop() returns
  // nullopt, which only happens after close() AND empty.
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    (*task)();
    std::lock_guard lock(idle_mutex_);
    if (--in_flight_ == 0) idle_cv_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::latch done(static_cast<std::ptrdiff_t>(chunks));
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    pool.submit([&, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
      done.count_down();
    });
  }
  done.wait();
}

}  // namespace dockmine::util
