// Byte-quantity helpers: literal-style constants, humanized formatting, and
// parsing. The analysis layer reports sizes exactly the way the paper does
// (MB/GB/TB figures such as "90% of layers are smaller than 177 MB").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dockmine/util/error.h"

namespace dockmine::util {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;
inline constexpr std::uint64_t kTiB = 1024ULL * kGiB;

// The paper uses decimal-looking units (MB, GB); we follow its convention in
// reports while keeping binary constants for internal bucketing.
inline constexpr std::uint64_t kKB = 1000ULL;
inline constexpr std::uint64_t kMB = 1000ULL * kKB;
inline constexpr std::uint64_t kGB = 1000ULL * kMB;
inline constexpr std::uint64_t kTB = 1000ULL * kGB;

/// "17.3 MB", "498 GB", "211 B". Decimal units, 3 significant digits.
std::string format_bytes(std::uint64_t bytes);

/// Parse "4MB", "1.5 GiB", "128k", "0" → bytes. Case-insensitive,
/// optional space, decimal ("MB") and binary ("MiB") suffixes.
Result<std::uint64_t> parse_bytes(std::string_view text);

/// Fixed-point percent: "3.2%".
std::string format_percent(double fraction, int decimals = 1);

/// Group thousands: 5278465130 → "5,278,465,130".
std::string format_count(std::uint64_t value);

}  // namespace dockmine::util
