// Error handling primitives for dockmine.
//
// The library avoids exceptions on hot paths (analysis loops touch millions
// of entries); fallible operations return `Result<T>` which carries either a
// value or an `Error{code, message}`. This mirrors the C++ Core Guidelines
// advice (E.2/E.3) of using exceptions only for truly exceptional conditions
// while keeping expected failures (corrupt tar member, missing manifest,
// auth-denied pull) in the normal control flow.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dockmine::util {

/// Broad failure categories used across all subsystems.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,        ///< manifest/blob/tag/repository missing
  kUnauthorized,    ///< registry demanded a token we do not have
  kCorrupt,         ///< malformed tar header, bad gzip CRC, bad JSON...
  kOutOfRange,
  kExhausted,       ///< resource/capacity limit hit
  kInternal,
  kUnavailable,     ///< upstream said "try later" (HTTP 500/503, breaker open)
  kTimeout,         ///< request deadline elapsed
  kReset,           ///< connection dropped mid-exchange (ECONNRESET-style)
};

/// Human-readable name of an ErrorCode ("not_found", ...).
std::string_view to_string(ErrorCode code) noexcept;

/// Whether a failure class is worth retrying. The split mirrors the paper's
/// crawl reality: 401/404 are *facts about the repository* (permanent — the
/// paper's two failure buckets), while 5xx/timeouts/resets are *facts about
/// the moment* and went away on retry during the weeks-long run.
enum class ErrorCategory : std::uint8_t {
  kPermanent,  ///< retrying cannot change the outcome
  kTransient,  ///< a later attempt may succeed
};

constexpr ErrorCategory category(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kTimeout:
    case ErrorCode::kReset:
      return ErrorCategory::kTransient;
    default:
      return ErrorCategory::kPermanent;
  }
}

constexpr bool is_retryable(ErrorCode code) noexcept {
  return category(code) == ErrorCategory::kTransient;
}

/// A failure: category plus a context message built at the failure site.
class Error {
 public:
  Error() = default;
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  ErrorCategory category() const noexcept { return util::category(code_); }
  bool retryable() const noexcept { return is_retryable(code_); }
  const std::string& message() const noexcept { return message_; }

  /// "not_found: no manifest for tag 'latest'"
  std::string to_string() const;

  friend bool operator==(const Error& a, const Error& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kInternal;
  std::string message_;
};

/// Value-or-Error, a minimal `expected`. `T` must be movable.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}            // NOLINT implicit
  Result(Error error) : state_(std::move(error)) {}        // NOLINT implicit

  bool ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: ok().
  T& value() & { return std::get<T>(state_); }
  const T& value() const& { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  /// Precondition: !ok().
  const Error& error() const& { return std::get<Error>(state_); }
  Error&& error() && { return std::get<Error>(std::move(state_)); }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;                                       // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }
  const Error& error() const noexcept { return error_; }

  static Status success() { return {}; }

 private:
  Error error_;
  bool failed_ = false;
};

/// Convenience factories keeping failure sites one-liners.
inline Error invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Error not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Error unauthorized(std::string msg) {
  return {ErrorCode::kUnauthorized, std::move(msg)};
}
inline Error corrupt(std::string msg) {
  return {ErrorCode::kCorrupt, std::move(msg)};
}
inline Error out_of_range(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Error internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Error exhausted(std::string msg) {
  return {ErrorCode::kExhausted, std::move(msg)};
}
inline Error unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Error timeout(std::string msg) {
  return {ErrorCode::kTimeout, std::move(msg)};
}
inline Error reset(std::string msg) {
  return {ErrorCode::kReset, std::move(msg)};
}

}  // namespace dockmine::util
