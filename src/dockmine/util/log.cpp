#include "dockmine/util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dockmine::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (level < g_level.load()) return;
  std::lock_guard lock(g_write_mutex);
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(level_tag(level).size()),
               level_tag(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace dockmine::util
