#include "dockmine/util/error.h"

namespace dockmine::util {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kUnauthorized: return "unauthorized";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kExhausted: return "exhausted";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kReset: return "reset";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out{util::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dockmine::util
