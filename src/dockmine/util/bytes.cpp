#include "dockmine/util/bytes.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace dockmine::util {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<std::string_view, 5> kUnits = {"B", "KB", "MB",
                                                             "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1000.0 && unit + 1 < kUnits.size()) {
    value /= 1000.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (value >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, kUnits[unit].data());
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kUnits[unit].data());
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, kUnits[unit].data());
  }
  return buf;
}

Result<std::uint64_t> parse_bytes(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  std::size_t start = pos;
  bool seen_dot = false;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          (text[pos] == '.' && !seen_dot))) {
    seen_dot = seen_dot || text[pos] == '.';
    ++pos;
  }
  if (pos == start) {
    return invalid_argument("no number in byte quantity '" + std::string(text) + "'");
  }
  double value = 0.0;
  try {
    value = std::stod(std::string(text.substr(start, pos - start)));
  } catch (...) {
    return invalid_argument("bad number in '" + std::string(text) + "'");
  }
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  std::string suffix;
  for (; pos < text.size(); ++pos) {
    if (std::isspace(static_cast<unsigned char>(text[pos]))) break;
    suffix += static_cast<char>(std::tolower(static_cast<unsigned char>(text[pos])));
  }
  double multiplier = 1.0;
  if (suffix.empty() || suffix == "b") {
    multiplier = 1.0;
  } else if (suffix == "k" || suffix == "kb") {
    multiplier = 1e3;
  } else if (suffix == "m" || suffix == "mb") {
    multiplier = 1e6;
  } else if (suffix == "g" || suffix == "gb") {
    multiplier = 1e9;
  } else if (suffix == "t" || suffix == "tb") {
    multiplier = 1e12;
  } else if (suffix == "kib") {
    multiplier = static_cast<double>(kKiB);
  } else if (suffix == "mib") {
    multiplier = static_cast<double>(kMiB);
  } else if (suffix == "gib") {
    multiplier = static_cast<double>(kGiB);
  } else if (suffix == "tib") {
    multiplier = static_cast<double>(kTiB);
  } else {
    return invalid_argument("unknown byte suffix '" + suffix + "'");
  }
  const double bytes = value * multiplier;
  if (bytes < 0.0 || bytes > 1.8e19) {
    return out_of_range("byte quantity out of range: " + std::string(text));
  }
  return static_cast<std::uint64_t>(std::llround(bytes));
}

std::string format_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace dockmine::util
