// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component of dockmine (the synthetic hub generator above
// all) threads an explicit `Rng` so a whole dataset is reproducible from a
// single 64-bit seed. The generator is xoshiro256++ (Blackman & Vigna),
// seeded through splitmix64 — the standard recipe for expanding a small seed
// into a full 256-bit state. We deliberately do not use <random> engines for
// the core state: std::mt19937_64 is ~2.5x slower and its distributions are
// not reproducible across standard libraries, which would make calibration
// targets flaky.
#pragma once

#include <cstdint>
#include <cmath>
#include <cstddef>

namespace dockmine::util {

/// splitmix64 step, used for seeding and cheap hashing of IDs into seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can also
/// feed <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Lemire's multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform01();
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    double u = 0.0;
    while (u == 0.0) u = uniform01();
    return -std::log(u) / rate;
  }

  /// Derive an independent child stream; used to give each generated object
  /// (repo, image, layer) its own generator so parallel generation stays
  /// deterministic regardless of scheduling.
  Rng fork(std::uint64_t salt) noexcept {
    std::uint64_t s = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Stable 64-bit hash of a string (FNV-1a), for deriving per-name seeds.
constexpr std::uint64_t fnv1a64(const char* data, std::size_t size) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dockmine::util
