// Rng is fully inline; this TU exists so dm_util has a stable archive member
// for the header and to host the (intentionally tiny) non-inline pieces if
// any grow later.
#include "dockmine/util/rng.h"

namespace dockmine::util {

static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);

}  // namespace dockmine::util
