// Open-addressing hash map with 64-bit keys (linear probing, power-of-two
// capacity). The file-dedup index holds one entry per distinct content —
// millions at bench scale, hundreds of millions at paper scale — where
// std::unordered_map's node allocations and pointer chasing dominate.
// This map stores entries inline in one contiguous array: ~3x faster
// inserts and ~4x less memory in the dedup ablation bench.
//
// Key 0 is reserved as the empty sentinel; callers must remap it
// (FileDedupIndex does: it never emits key 0).
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace dockmine::util {

template <typename Value>
class FlatMap64 {
 public:
  explicit FlatMap64(std::size_t expected = 64) { rehash_for(expected); }

  /// Find or default-insert; returns a reference valid until next insert.
  Value& operator[](std::uint64_t key) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) {  // load factor 0.7
      rehash_for(size_ * 2 + 16);
    }
    std::size_t idx = probe(key);
    if (slots_[idx].key == 0) {
      slots_[idx].key = key;
      ++size_;
    }
    return slots_[idx].value;
  }

  const Value* find(std::uint64_t key) const {
    const std::size_t idx = probe(key);
    return slots_[idx].key == 0 ? nullptr : &slots_[idx].value;
  }

  /// Mutable lookup without insertion (the dedup retraction path: update
  /// an existing entry in place, never grow the table for a miss).
  Value* find_mut(std::uint64_t key) {
    const std::size_t idx = probe(key);
    return slots_[idx].key == 0 ? nullptr : &slots_[idx].value;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Iterate occupied entries: fn(key, value).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != 0) fn(slot.key, slot.value);
    }
  }

  void clear() {
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
  }

  /// Bytes of heap owned by the table.
  std::size_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Value value{};
  };

  static std::uint64_t mix(std::uint64_t k) noexcept {
    // splitmix64 finalizer — keys may be weak (sequential ids).
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return k;
  }

  std::size_t probe(std::uint64_t key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(mix(key)) & mask;
    while (slots_[idx].key != 0 && slots_[idx].key != key) {
      idx = (idx + 1) & mask;
    }
    return idx;
  }

  void rehash_for(std::size_t want) {
    std::size_t capacity = 16;
    while (capacity * 7 < want * 10) capacity <<= 1;  // keep load < 0.7
    if (!slots_.empty() && capacity <= slots_.size()) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    for (Slot& slot : old) {
      if (slot.key == 0) continue;
      const std::size_t idx = probe(slot.key);
      slots_[idx] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace dockmine::util
