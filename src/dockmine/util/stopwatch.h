// Wall-clock stopwatch used by the downloader and pipeline for throughput
// accounting (images/s, MB/s — the paper reports a 30-day crawl; we report
// our simulated equivalent).
#pragma once

#include <chrono>

namespace dockmine::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dockmine::util
