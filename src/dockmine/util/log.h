// Minimal leveled logger. Thread-safe (single global mutex around the write;
// log volume in dockmine is low — progress lines, warnings).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace dockmine::util {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are dropped. Default kWarn so tests
/// and benchmarks stay quiet unless asked.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Write one formatted line ("[info] message\n") to stderr if enabled.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace dockmine::util
