#include "dockmine/digest/digest.h"

namespace dockmine::digest {

namespace {
int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Digest Digest::from_u64(std::uint64_t id) noexcept {
  Sha256::Bytes raw{};
  // Distinct salts per word make the 256-bit expansion injective in id and
  // word-wise independent, so key64() is uniform.
  std::uint64_t seed = id;
  for (int word = 0; word < 4; ++word) {
    std::uint64_t s = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(word + 1);
    const std::uint64_t v = util::splitmix64(s);
    for (int b = 0; b < 8; ++b) {
      raw[word * 8 + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return Digest(raw);
}

util::Result<Digest> Digest::parse(std::string_view text) {
  constexpr std::string_view kPrefix = "sha256:";
  if (text.substr(0, kPrefix.size()) != kPrefix) {
    return util::invalid_argument("digest missing 'sha256:' prefix: " +
                                  std::string(text));
  }
  const std::string_view hex = text.substr(kPrefix.size());
  if (hex.size() != 64) {
    return util::invalid_argument("digest hex must be 64 chars, got " +
                                  std::to_string(hex.size()));
  }
  Sha256::Bytes raw{};
  for (std::size_t i = 0; i < 32; ++i) {
    const int hi = hex_value(hex[2 * i]);
    const int lo = hex_value(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return util::invalid_argument("non-hex character in digest");
    }
    raw[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return Digest(raw);
}

std::string Digest::to_string() const { return "sha256:" + to_hex(raw_); }

std::string Digest::short_hex() const { return to_hex(raw_).substr(0, 12); }

}  // namespace dockmine::digest
