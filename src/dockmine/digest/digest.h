// Docker-style content digest value type: "sha256:<64 hex chars>".
// Used as the identity of blobs, layers, manifests, and files.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

#include "dockmine/digest/sha256.h"
#include "dockmine/util/error.h"
#include "dockmine/util/rng.h"

namespace dockmine::digest {

class Digest {
 public:
  Digest() = default;
  explicit Digest(const Sha256::Bytes& raw) : raw_(raw) {}

  /// Hash real content.
  static Digest of(std::string_view content) {
    return Digest(Sha256::hash(content));
  }
  static Digest of(const void* data, std::size_t size) {
    return Digest(Sha256::hash(data, size));
  }

  /// Deterministically expand a 64-bit content id into a digest. Metadata
  /// mode identifies files by ids drawn from the duplication pool without
  /// materializing bytes; this keeps those ids in the same keyspace as real
  /// hashes. Collision-free across ids by construction (bijective per word).
  static Digest from_u64(std::uint64_t id) noexcept;

  /// Parse "sha256:<hex>"; the "sha256:" prefix is required, hex must be 64
  /// lowercase/uppercase hex chars.
  static util::Result<Digest> parse(std::string_view text);

  const Sha256::Bytes& raw() const noexcept { return raw_; }

  /// "sha256:ab12...".
  std::string to_string() const;

  /// First 12 hex chars, the common human-readable abbreviation.
  std::string short_hex() const;

  /// Cheap 64-bit key for hash maps (first 8 bytes; uniform for real
  /// SHA-256 output and for from_u64 expansion).
  std::uint64_t key64() const noexcept {
    std::uint64_t k;
    std::memcpy(&k, raw_.data(), sizeof k);
    return k;
  }

  bool is_zero() const noexcept {
    for (auto b : raw_) {
      if (b != 0) return false;
    }
    return true;
  }

  friend bool operator==(const Digest& a, const Digest& b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend bool operator!=(const Digest& a, const Digest& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Digest& a, const Digest& b) noexcept {
    return a.raw_ < b.raw_;
  }

 private:
  Sha256::Bytes raw_{};
};

struct DigestHash {
  std::size_t operator()(const Digest& d) const noexcept {
    return static_cast<std::size_t>(d.key64());
  }
};

}  // namespace dockmine::digest
