// SHA-256 (FIPS 180-4), implemented from scratch. Docker addresses every
// blob and layer by its sha256 digest; the registry, blob store, and
// file-level dedup all hash through this type. Incremental interface so tar
// streams can be hashed without buffering.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dockmine::digest {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Bytes = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(const void* data, std::size_t size) noexcept;
  void update(std::string_view text) noexcept {
    update(text.data(), text.size());
  }

  /// Finalize and return the 32-byte digest. The object must be reset()
  /// before reuse.
  Bytes finish() noexcept;

  /// One-shot convenience.
  static Bytes hash(const void* data, std::size_t size) noexcept;
  static Bytes hash(std::string_view text) noexcept {
    return hash(text.data(), text.size());
  }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t state_[8];
  std::uint64_t total_bytes_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

/// Lowercase hex of a raw digest.
std::string to_hex(const Sha256::Bytes& digest);

}  // namespace dockmine::digest
