// Minimal JSON document model, recursive-descent parser, and serializer.
//
// Docker manifests and image configs are JSON ("image manifests as
// JSON-based files", paper §II-C); the registry stores and serves them, the
// downloader parses them, and the bench harness emits JSON reports. Objects
// preserve insertion order so serialized manifests are byte-stable, which
// matters because manifests are content-addressed by their digest.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dockmine/util/error.h"

namespace dockmine::json {

class Value;
using Array = std::vector<Value>;
using Members = std::vector<std::pair<std::string, Value>>;

enum class Type : std::uint8_t {
  kNull,
  kBool,
  kInt,     // exact 64-bit integers (sizes, counts)
  kDouble,  // everything else numeric
  kString,
  kArray,
  kObject,
};

class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}                    // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}                  // NOLINT
  Value(std::int64_t i) : type_(Type::kInt), int_(i) {}            // NOLINT
  Value(std::uint64_t u)                                           // NOLINT
      : type_(Type::kInt), int_(static_cast<std::int64_t>(u)) {}
  Value(int i) : type_(Type::kInt), int_(i) {}                     // NOLINT
  Value(double d) : type_(Type::kDouble), double_(d) {}            // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}       // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}    // NOLINT

  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_int() const noexcept { return type_ == Type::kInt; }
  bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return type_ == Type::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  std::uint64_t as_uint() const {
    return static_cast<std::uint64_t>(as_int());
  }
  double as_double() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }

  const Array& items() const { return array_; }
  Array& items() { return array_; }
  const Members& members() const { return members_; }

  std::size_t size() const noexcept {
    return is_array() ? array_.size() : is_object() ? members_.size() : 0;
  }

  /// Object member access; returns a shared null for missing keys so lookup
  /// chains (`v["a"]["b"]`) are safe on absent paths.
  const Value& operator[](std::string_view key) const;
  bool contains(std::string_view key) const;

  /// Array element access (bounds-checked).
  const Value& at(std::size_t index) const { return array_.at(index); }

  /// Insert or replace a member (objects only).
  void set(std::string key, Value value);

  /// Append an element (arrays only).
  void push_back(Value value) { array_.push_back(std::move(value)); }

  /// Compact serialization (no whitespace). Stable member order.
  std::string dump() const;
  /// Pretty serialization with 2-space indent.
  std::string dump_pretty() const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Members members_;
};

/// Parse a complete JSON document. Trailing non-whitespace is an error.
util::Result<Value> parse(std::string_view text);

/// Escape a string per RFC 8259 (used by the serializer; exposed for tests).
std::string escape(std::string_view raw);

}  // namespace dockmine::json
