#include "dockmine/json/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstdio>

namespace dockmine::json {

namespace {
const Value kNullValue{};
}

const Value& Value::operator[](std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  return kNullValue;
}

bool Value::contains(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

void Value::set(std::string key, Value value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        // Shortest representation that round-trips: try increasing
        // precision until strtod gives the value back.
        char buf[40];
        for (int precision = 15; precision <= 17; ++precision) {
          std::snprintf(buf, sizeof buf, "%.*g", precision, double_);
          if (std::strtod(buf, nullptr) == double_) break;
        }
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].write(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(members_[i].first);
        out += indent > 0 ? "\": " : "\":";
        members_[i].second.write(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Result<Value> run() {
    skip_ws();
    auto value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 200;

  util::Error fail(std::string msg) const {
    return util::corrupt("json at offset " + std::to_string(pos_) + ": " +
                         std::move(msg));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Result<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return std::move(s).error();
        return Value(std::move(s).value());
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value(true);
        }
        return fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value(false);
        }
        return fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value(nullptr);
        }
        return fail("bad literal");
      default: return parse_number();
    }
  }

  util::Result<std::string> parse_string() {
    if (!eat('"')) return fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad hex in \\u escape");
            }
            // Encode BMP code point as UTF-8 (surrogate pairs folded to
            // U+FFFD; manifests never contain them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else if (code >= 0xd800 && code <= 0xdfff) {
              out += "\xef\xbf\xbd";
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  util::Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (eat('-')) {}
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (eat('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("bad number");
    if (!is_double) {
      std::int64_t iv = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), iv);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Value(iv);
      }
      // Integer overflow: fall through to double.
    }
    double dv = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), dv);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return fail("unparseable number '" + std::string(token) + "'");
    }
    return Value(dv);
  }

  util::Result<Value> parse_array(int depth) {
    eat('[');
    Value out = Value::array();
    skip_ws();
    if (eat(']')) return out;
    for (;;) {
      skip_ws();
      auto element = parse_value(depth + 1);
      if (!element.ok()) return element;
      out.push_back(std::move(element).value());
      skip_ws();
      if (eat(']')) return out;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
  }

  util::Result<Value> parse_object(int depth) {
    eat('{');
    Value out = Value::object();
    skip_ws();
    if (eat('}')) return out;
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return std::move(key).error();
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      out.set(std::move(key).value(), std::move(value).value());
      skip_ws();
      if (eat('}')) return out;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace dockmine::json
