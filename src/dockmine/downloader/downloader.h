// Parallel image downloader (paper §III-B, Fig. 2 stage 2).
//
// Speaks the Registry V2 protocol against the service: resolve
// `<repo>:latest` to a manifest, then fetch each referenced layer blob.
// Like the paper's downloader it (a) downloads multiple images
// simultaneously, (b) fetches the layers of an image in parallel, and
// (c) downloads each unique layer only once across the whole run. Failure
// accounting reproduces the paper's two permanent classes: authentication
// required (13% of failures) and missing `latest` tag (87%).
//
// Hardening (the properties that kept the paper's weeks-long crawl alive):
//   * every fetched blob is verified against its manifest digest before it
//     is cached, checkpointed, or delivered — a mismatched transfer is
//     re-fetched once, then reported as a digest failure;
//   * with a Checkpoint attached, completed repositories are skipped on
//     restart and verified layers are reloaded from disk instead of
//     re-transferred;
//   * wrap the source in registry::ResilientSource to add retry/backoff
//     and circuit breaking below this layer (decorators compose:
//     Downloader -> ResilientSource -> FaultySource -> Service).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dockmine/blob/store.h"
#include "dockmine/downloader/checkpoint.h"
#include "dockmine/registry/service.h"
#include "dockmine/util/error.h"

namespace dockmine::downloader {

struct Options {
  std::size_t workers = 4;
  std::string tag = "latest";
  bool authenticated = false;       ///< present a token (disables 401s)
  bool dedup_unique_layers = true;  ///< skip layers fetched earlier
  /// Verify each fetched blob hashes to its manifest digest; one silent
  /// re-fetch on mismatch. Registry blobs are content-addressed, so this is
  /// on by default; turn off only for sources serving synthetic digests.
  bool verify_digests = true;
  /// Optional crash/resume record; not owned, must outlive the run.
  Checkpoint* checkpoint = nullptr;
  /// Keep each unique layer's bytes in the run-wide cache and deliver them
  /// in DownloadedImage::layer_blobs. Turning this off caps blob residency:
  /// the cache records only completion markers, images are delivered
  /// without bytes, and a `layer_sink` is the sole consumer of blob
  /// contents — the streaming pipeline's memory model.
  bool retain_blobs = true;
  /// Invoked exactly once per unique verified layer (checkpoint resumes
  /// included) from the worker that acquired it, outside all internal
  /// locks. May block: a bounded downstream queue blocks the pushing
  /// worker, which is precisely the backpressure a streaming pipeline
  /// wants. With dedup_unique_layers off it fires once per acquisition.
  std::function<void(const digest::Digest&, const blob::BlobPtr&)> layer_sink;
  /// Cooperative cancellation: once set, repositories not yet started are
  /// skipped (counted in DownloadStats::repos_canceled). In-flight
  /// repositories finish normally, so a checkpointed run can be "killed"
  /// mid-stream and later resumed without torn per-repo state.
  const std::atomic<bool>* cancel = nullptr;
  /// Re-deliver checkpoint-completed repositories through the sinks (the
  /// manifest is re-fetched; layer bytes come from the checkpoint store,
  /// not the network). A resumed streaming run needs the full image set to
  /// rebuild its report; a mirror-style run does not — hence opt-in.
  bool deliver_resumed = false;
};

/// A fully fetched image: parsed manifest plus one blob per manifest layer
/// (shared pointers into the unique-layer cache).
struct DownloadedImage {
  registry::Manifest manifest;
  std::vector<blob::BlobPtr> layer_blobs;  ///< aligned with manifest.layers
};

struct DownloadStats {
  std::uint64_t attempted = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed_auth = 0;      ///< 401
  std::uint64_t failed_no_tag = 0;    ///< 404 (repo exists, tag missing)
  std::uint64_t failed_missing = 0;   ///< 404 (repo unknown)
  std::uint64_t failed_digest = 0;    ///< blob never hashed to its digest
  std::uint64_t failed_other = 0;
  std::uint64_t repos_resumed = 0;    ///< skipped: checkpoint says complete
  std::uint64_t repos_canceled = 0;   ///< never started: run was canceled
  std::uint64_t layers_fetched = 0;   ///< verified blob transfers
  std::uint64_t layers_deduped = 0;   ///< skipped: already fetched this run
  std::uint64_t layers_resumed = 0;   ///< loaded from the checkpoint store
  std::uint64_t retries = 0;          ///< re-fetches after a digest mismatch
  std::uint64_t bytes_downloaded = 0;  ///< verified transfer bytes (dedup'd
                                       ///< and resumed layers not counted)
  std::uint64_t bytes_discarded = 0;  ///< transfer bytes thrown away because
                                      ///< the blob failed verification
  double wall_seconds = 0.0;

  /// Every attempted repository lands in exactly one bucket.
  std::uint64_t accounted() const noexcept {
    return succeeded + failed_auth + failed_no_tag + failed_missing +
           failed_digest + failed_other + repos_resumed + repos_canceled;
  }
};

class Downloader {
 public:
  /// Works against any registry source: the in-process Service, a
  /// RemoteRegistry speaking HTTP, or either behind ResilientSource /
  /// FaultySource decorators.
  Downloader(registry::Source& source, Options options = {})
      : service_(source), options_(options) {}

  /// Download every repository in `repositories`; deliver completed images
  /// through `sink` (invoked under an internal mutex, in completion order).
  /// `sink` may be null when only the statistics matter.
  DownloadStats run(const std::vector<std::string>& repositories,
                    const std::function<void(DownloadedImage&&)>& sink);

  /// Download a single image.
  util::Result<DownloadedImage> download_one(const std::string& repository);

 private:
  util::Result<DownloadedImage> fetch_image(const std::string& repository);

  /// Fetch a layer through the unique-layer cache with single-flight
  /// semantics: concurrent requests for one digest produce one transfer.
  util::Result<blob::BlobPtr> fetch_layer(const digest::Digest& digest);

  /// One verified acquisition from checkpoint or network: transfer, check
  /// the hash, re-fetch once on mismatch, persist to the checkpoint.
  util::Result<blob::BlobPtr> acquire_layer(const digest::Digest& digest);

  registry::Source& service_;
  Options options_;
  std::mutex cache_mutex_;
  std::condition_variable cache_cv_;
  std::unordered_map<digest::Digest, blob::BlobPtr, digest::DigestHash>
      layer_cache_;
  std::unordered_set<digest::Digest, digest::DigestHash> in_flight_;
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> bytes_fetched_{0};
  std::atomic<std::uint64_t> blobs_fetched_{0};
  std::atomic<std::uint64_t> bytes_discarded_{0};
  std::atomic<std::uint64_t> digest_retries_{0};
  std::atomic<std::uint64_t> layers_resumed_{0};
};

}  // namespace dockmine::downloader
