// Parallel image downloader (paper §III-B, Fig. 2 stage 2).
//
// Speaks the Registry V2 protocol against the service: resolve
// `<repo>:latest` to a manifest, then fetch each referenced layer blob.
// Like the paper's downloader it (a) downloads multiple images
// simultaneously, (b) fetches the layers of an image in parallel, and
// (c) downloads each unique layer only once across the whole run. Failure
// accounting reproduces the paper's two classes: authentication required
// (13% of failures) and missing `latest` tag (87%).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dockmine/blob/store.h"
#include "dockmine/registry/service.h"
#include "dockmine/util/error.h"

namespace dockmine::downloader {

struct Options {
  std::size_t workers = 4;
  std::string tag = "latest";
  bool authenticated = false;       ///< present a token (disables 401s)
  bool dedup_unique_layers = true;  ///< skip layers fetched earlier
};

/// A fully fetched image: parsed manifest plus one blob per manifest layer
/// (shared pointers into the unique-layer cache).
struct DownloadedImage {
  registry::Manifest manifest;
  std::vector<blob::BlobPtr> layer_blobs;  ///< aligned with manifest.layers
};

struct DownloadStats {
  std::uint64_t attempted = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed_auth = 0;      ///< 401
  std::uint64_t failed_no_tag = 0;    ///< 404 (repo exists, tag missing)
  std::uint64_t failed_missing = 0;   ///< 404 (repo unknown)
  std::uint64_t failed_other = 0;
  std::uint64_t layers_fetched = 0;   ///< actual blob transfers
  std::uint64_t layers_deduped = 0;   ///< skipped: already fetched
  std::uint64_t bytes_downloaded = 0;  ///< actual transfer (dedup'd layers
                                       ///< are not re-counted)
  double wall_seconds = 0.0;
};

class Downloader {
 public:
  /// Works against any registry source: the in-process Service or a
  /// RemoteRegistry speaking HTTP.
  Downloader(registry::Source& source, Options options = {})
      : service_(source), options_(options) {}

  /// Download every repository in `repositories`; deliver completed images
  /// through `sink` (invoked under an internal mutex, in completion order).
  /// `sink` may be null when only the statistics matter.
  DownloadStats run(const std::vector<std::string>& repositories,
                    const std::function<void(DownloadedImage&&)>& sink);

  /// Download a single image.
  util::Result<DownloadedImage> download_one(const std::string& repository);

 private:
  util::Result<DownloadedImage> fetch_image(const std::string& repository);

  /// Fetch a layer through the unique-layer cache with single-flight
  /// semantics: concurrent requests for one digest produce one transfer.
  util::Result<blob::BlobPtr> fetch_layer(const digest::Digest& digest);

  registry::Source& service_;
  Options options_;
  std::mutex cache_mutex_;
  std::condition_variable cache_cv_;
  std::unordered_map<digest::Digest, blob::BlobPtr, digest::DigestHash>
      layer_cache_;
  std::unordered_set<digest::Digest, digest::DigestHash> in_flight_;
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> bytes_fetched_{0};
  std::atomic<std::uint64_t> blobs_fetched_{0};
};

}  // namespace dockmine::downloader
