#include "dockmine/downloader/downloader.h"

#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/registry/manifest.h"
#include "dockmine/util/stopwatch.h"
#include "dockmine/util/thread_pool.h"

namespace dockmine::downloader {

namespace {

struct DownloaderMetrics {
  obs::Counter& layers;
  obs::Counter& bytes;
  obs::Counter& cache_hits;
  obs::Counter& digest_failures;
  obs::Counter& bytes_discarded;
  obs::Counter& layers_resumed;
  obs::Counter& repos_succeeded;
  obs::Counter& repos_failed;
  obs::Counter& repos_resumed;
  obs::Gauge& inflight_repos;
  obs::Histogram& layer_bytes;
  obs::Histogram& layer_ms;

  static DownloaderMetrics& get() {
    auto& reg = obs::Registry::global();
    static DownloaderMetrics m{
        reg.counter("dockmine_download_layers_total"),
        reg.counter("dockmine_download_bytes_total"),
        reg.counter("dockmine_download_cache_hits_total"),
        reg.counter("dockmine_download_digest_failures_total"),
        reg.counter("dockmine_download_bytes_discarded_total"),
        reg.counter("dockmine_download_layers_resumed_total"),
        reg.counter("dockmine_download_repos_succeeded_total"),
        reg.counter("dockmine_download_repos_failed_total"),
        reg.counter("dockmine_download_repos_resumed_total"),
        reg.gauge("dockmine_download_inflight_repos"),
        reg.histogram("dockmine_download_layer_bytes"),
        reg.histogram("dockmine_download_layer_ms")};
    return m;
  }
};

}  // namespace

util::Result<blob::BlobPtr> Downloader::acquire_layer(
    const digest::Digest& digest) {
  DownloaderMetrics& metrics = DownloaderMetrics::get();
  // Checkpointed layers were verified before being admitted; reloading them
  // costs disk I/O, not registry traffic.
  if (options_.checkpoint != nullptr && options_.checkpoint->has_layer(digest)) {
    auto restored = options_.checkpoint->layer(digest);
    if (restored.ok()) {
      layers_resumed_.fetch_add(1, std::memory_order_relaxed);
      metrics.layers_resumed.add();
      return restored;
    }
    // Checkpoint store unreadable: fall through to a normal transfer.
  }

  const obs::Timer timer;
  for (int transfer = 1;; ++transfer) {
    auto blob = service_.fetch_blob(digest);
    if (!blob.ok()) return blob;
    if (options_.verify_digests &&
        digest::Digest::of(*blob.value()) != digest) {
      // Truncated or bit-flipped in flight. One silent re-fetch, as the
      // paper's downloader did; a second mismatch means the upstream copy
      // itself is bad and retrying cannot help.
      bytes_discarded_.fetch_add(blob.value()->size(),
                                 std::memory_order_relaxed);
      metrics.bytes_discarded.add(blob.value()->size());
      if (transfer >= 2) {
        metrics.digest_failures.add();
        return util::corrupt("digest mismatch for layer " + digest.short_hex());
      }
      digest_retries_.fetch_add(1, std::memory_order_relaxed);
      metrics.digest_failures.add();
      continue;
    }
    bytes_fetched_.fetch_add(blob.value()->size(), std::memory_order_relaxed);
    blobs_fetched_.fetch_add(1, std::memory_order_relaxed);
    metrics.layers.add();
    metrics.bytes.add(blob.value()->size());
    metrics.layer_bytes.observe(static_cast<double>(blob.value()->size()));
    metrics.layer_ms.observe(timer.ms());
    if (options_.checkpoint != nullptr) {
      // Best effort: a failed checkpoint write only costs a future re-fetch.
      (void)options_.checkpoint->put_layer(digest, *blob.value());
    }
    return blob;
  }
}

util::Result<blob::BlobPtr> Downloader::fetch_layer(
    const digest::Digest& digest) {
  if (!options_.dedup_unique_layers) {
    const obs::EventSpan layer_span("download_layer");
    auto blob = acquire_layer(digest);
    if (blob.ok() && options_.layer_sink) {
      options_.layer_sink(digest, blob.value());
    }
    return blob;
  }

  {
    std::unique_lock lock(cache_mutex_);
    for (;;) {
      const auto it = layer_cache_.find(digest);
      if (it != layer_cache_.end()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        DownloaderMetrics::get().cache_hits.add();
        return it->second;
      }
      if (in_flight_.insert(digest).second) break;  // we fetch
      // Another worker is transferring this layer; wait for it.
      cache_cv_.wait(lock);
    }
  }

  // One journal event per unique transferred layer (cache hits return
  // above without one). The sink below fires while this span is open, so
  // downstream consumers can parent their work to this layer's download.
  const obs::EventSpan layer_span("download_layer");
  auto blob = acquire_layer(digest);
  {
    std::lock_guard lock(cache_mutex_);
    in_flight_.erase(digest);
    if (blob.ok()) {
      // Only verified blobs enter the cache, so a corrupt transfer can
      // never be replayed to other images sharing the layer. Without
      // retain_blobs the entry is a null completion marker: later
      // references learn the layer is done without pinning its bytes.
      layer_cache_.emplace(digest,
                           options_.retain_blobs ? blob.value() : nullptr);
    }
  }
  cache_cv_.notify_all();
  // The sink runs after the cache insert so a blocking downstream (bounded
  // queue backpressure) stalls only this worker — same-digest waiters were
  // already released by the notify above.
  if (blob.ok() && options_.layer_sink) {
    options_.layer_sink(digest, blob.value());
  }
  return blob;
}

util::Result<DownloadedImage> Downloader::fetch_image(
    const std::string& repository) {
  auto manifest_body =
      service_.fetch_manifest(repository, options_.tag, options_.authenticated);
  if (!manifest_body.ok()) return std::move(manifest_body).error();
  auto manifest = registry::manifest_from_json(manifest_body.value());
  if (!manifest.ok()) return std::move(manifest).error();

  DownloadedImage image;
  image.manifest = std::move(manifest).value();
  if (options_.retain_blobs) {
    image.layer_blobs.resize(image.manifest.layers.size());
  }

  for (std::size_t i = 0; i < image.manifest.layers.size(); ++i) {
    auto blob = fetch_layer(image.manifest.layers[i].digest);
    if (!blob.ok()) return std::move(blob).error();
    if (options_.retain_blobs) image.layer_blobs[i] = std::move(blob).value();
  }
  return image;
}

util::Result<DownloadedImage> Downloader::download_one(
    const std::string& repository) {
  return fetch_image(repository);
}

DownloadStats Downloader::run(
    const std::vector<std::string>& repositories,
    const std::function<void(DownloadedImage&&)>& sink) {
  DownloadStats stats;
  stats.attempted = repositories.size();
  const std::uint64_t cache_hits_before = cache_hits_.load();
  const std::uint64_t bytes_before = bytes_fetched_.load();
  const std::uint64_t blobs_before = blobs_fetched_.load();
  const std::uint64_t discarded_before = bytes_discarded_.load();
  const std::uint64_t digest_retries_before = digest_retries_.load();
  const std::uint64_t resumed_before = layers_resumed_.load();

  std::mutex stats_mutex;  // also serializes sink
  util::Stopwatch clock;
  util::ThreadPool pool(options_.workers);
  DownloaderMetrics& metrics = DownloaderMetrics::get();
  // Pool threads have no span context of their own; adopt the calling
  // thread's (the pipeline's "download"/"stream" span) so per-layer events
  // parent into the run's trace instead of floating as roots.
  const obs::TraceContext run_ctx = obs::current_trace_context();
  util::parallel_for(pool, 0, repositories.size(), /*grain=*/1,
                     [&](std::size_t i) {
    const obs::ContextGuard adopt(run_ctx);
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      std::lock_guard lock(stats_mutex);
      ++stats.repos_canceled;
      return;
    }
    const bool resumed = options_.checkpoint != nullptr &&
                         options_.checkpoint->repo_done(repositories[i]);
    if (resumed && !options_.deliver_resumed) {
      metrics.repos_resumed.add();
      std::lock_guard lock(stats_mutex);
      ++stats.repos_resumed;
      return;
    }
    metrics.inflight_repos.add(1);
    // A resumed repository re-runs fetch_image, but its layers resolve from
    // the checkpoint store (no registry blob traffic) — only the small
    // manifest is re-fetched so the sinks can see the complete image set.
    auto image = fetch_image(repositories[i]);
    metrics.inflight_repos.sub(1);
    if (image.ok() && !resumed && options_.checkpoint != nullptr) {
      (void)options_.checkpoint->mark_repo_done(repositories[i]);
    }
    if (image.ok()) {
      if (resumed) {
        metrics.repos_resumed.add();
      } else {
        metrics.repos_succeeded.add();
      }
    } else {
      metrics.repos_failed.add();
    }
    std::lock_guard lock(stats_mutex);
    if (!image.ok()) {
      // Each attempted repository lands in exactly one failure bucket —
      // transient errors retried (below us) into success never show here.
      const util::Error& error = image.error();
      switch (error.code()) {
        case util::ErrorCode::kUnauthorized:
          ++stats.failed_auth;
          break;
        case util::ErrorCode::kNotFound: {
          // Distinguish unknown repo from missing tag by the message the
          // service produced.
          if (error.message().find("has no tag") != std::string::npos) {
            ++stats.failed_no_tag;
          } else {
            ++stats.failed_missing;
          }
          break;
        }
        case util::ErrorCode::kCorrupt: {
          if (error.message().find("digest mismatch") != std::string::npos) {
            ++stats.failed_digest;
          } else {
            ++stats.failed_other;
          }
          break;
        }
        default:
          ++stats.failed_other;
      }
      return;
    }
    if (resumed) {
      ++stats.repos_resumed;
    } else {
      ++stats.succeeded;
    }
    if (sink) sink(std::move(image).value());
  });
  pool.shutdown();

  stats.layers_deduped = cache_hits_.load() - cache_hits_before;
  stats.bytes_downloaded = bytes_fetched_.load() - bytes_before;
  stats.layers_fetched = blobs_fetched_.load() - blobs_before;
  stats.bytes_discarded = bytes_discarded_.load() - discarded_before;
  stats.retries = digest_retries_.load() - digest_retries_before;
  stats.layers_resumed = layers_resumed_.load() - resumed_before;
  stats.wall_seconds = clock.seconds();
  return stats;
}

}  // namespace dockmine::downloader
