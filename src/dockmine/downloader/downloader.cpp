#include "dockmine/downloader/downloader.h"

#include "dockmine/registry/manifest.h"
#include "dockmine/util/stopwatch.h"
#include "dockmine/util/thread_pool.h"

namespace dockmine::downloader {

util::Result<blob::BlobPtr> Downloader::fetch_layer(
    const digest::Digest& digest) {
  if (!options_.dedup_unique_layers) {
    auto blob = service_.fetch_blob(digest);
    if (!blob.ok()) return blob;
    bytes_fetched_.fetch_add(blob.value()->size(), std::memory_order_relaxed);
    blobs_fetched_.fetch_add(1, std::memory_order_relaxed);
    return blob;
  }

  {
    std::unique_lock lock(cache_mutex_);
    for (;;) {
      const auto it = layer_cache_.find(digest);
      if (it != layer_cache_.end()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
      if (in_flight_.insert(digest).second) break;  // we fetch
      // Another worker is transferring this layer; wait for it.
      cache_cv_.wait(lock);
    }
  }

  auto blob = service_.fetch_blob(digest);
  {
    std::lock_guard lock(cache_mutex_);
    in_flight_.erase(digest);
    if (blob.ok()) {
      layer_cache_.emplace(digest, blob.value());
      bytes_fetched_.fetch_add(blob.value()->size(),
                               std::memory_order_relaxed);
      blobs_fetched_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  cache_cv_.notify_all();
  return blob;
}

util::Result<DownloadedImage> Downloader::fetch_image(
    const std::string& repository) {
  auto manifest_body =
      service_.fetch_manifest(repository, options_.tag, options_.authenticated);
  if (!manifest_body.ok()) return std::move(manifest_body).error();
  auto manifest = registry::manifest_from_json(manifest_body.value());
  if (!manifest.ok()) return std::move(manifest).error();

  DownloadedImage image;
  image.manifest = std::move(manifest).value();
  image.layer_blobs.resize(image.manifest.layers.size());

  for (std::size_t i = 0; i < image.manifest.layers.size(); ++i) {
    auto blob = fetch_layer(image.manifest.layers[i].digest);
    if (!blob.ok()) return std::move(blob).error();
    image.layer_blobs[i] = std::move(blob).value();
  }
  return image;
}

util::Result<DownloadedImage> Downloader::download_one(
    const std::string& repository) {
  return fetch_image(repository);
}

DownloadStats Downloader::run(
    const std::vector<std::string>& repositories,
    const std::function<void(DownloadedImage&&)>& sink) {
  DownloadStats stats;
  stats.attempted = repositories.size();
  const std::uint64_t cache_hits_before = cache_hits_.load();
  const std::uint64_t bytes_before = bytes_fetched_.load();
  const std::uint64_t blobs_before = blobs_fetched_.load();

  std::mutex stats_mutex;  // also serializes sink
  util::Stopwatch clock;
  util::ThreadPool pool(options_.workers);
  util::parallel_for(pool, 0, repositories.size(), /*grain=*/1,
                     [&](std::size_t i) {
    auto image = fetch_image(repositories[i]);
    std::lock_guard lock(stats_mutex);
    if (!image.ok()) {
      switch (image.error().code()) {
        case util::ErrorCode::kUnauthorized:
          ++stats.failed_auth;
          break;
        case util::ErrorCode::kNotFound: {
          // Distinguish unknown repo from missing tag by the message the
          // service produced.
          if (image.error().message().find("has no tag") != std::string::npos) {
            ++stats.failed_no_tag;
          } else {
            ++stats.failed_missing;
          }
          break;
        }
        default:
          ++stats.failed_other;
      }
      return;
    }
    ++stats.succeeded;
    if (sink) sink(std::move(image).value());
  });
  pool.shutdown();

  stats.layers_deduped = cache_hits_.load() - cache_hits_before;
  stats.bytes_downloaded = bytes_fetched_.load() - bytes_before;
  stats.layers_fetched = blobs_fetched_.load() - blobs_before;
  stats.wall_seconds = clock.seconds();
  return stats;
}

}  // namespace dockmine::downloader
