// Crash-safe progress record for downloader runs.
//
// The paper's download stage ran for weeks; surviving a mid-run restart
// without re-transferring terabytes is part of why the measurement was
// possible at all. A Checkpoint persists two sets — completed repositories
// and verified layer digests — in a layout made of parts that are each
// individually crash-tolerant:
//
//   <dir>/completed.log   append-only text journal, one record per line:
//                           repo <name>
//                           layer <digest>
//   <dir>/blobs/...       a blob::DiskStore holding the verified bytes of
//                         every checkpointed layer (atomic temp+rename
//                         writes, content-addressed paths)
//
// A record is appended only after its work is durably complete (the layer's
// bytes are in the store; every layer of the repository was delivered), so
// the worst a mid-write kill can leave is a torn trailing line, which
// reload drops. A `layer` line whose blob is missing from the store is
// likewise ignored. Resuming is therefore always safe: the checkpoint may
// under-promise after a crash, never over-promise.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "dockmine/blob/disk_store.h"
#include "dockmine/blob/store.h"
#include "dockmine/digest/digest.h"
#include "dockmine/util/error.h"

namespace dockmine::downloader {

class Checkpoint {
 public:
  /// Open (creating if needed) a checkpoint rooted at `dir`, replaying any
  /// existing journal.
  static util::Result<Checkpoint> open(const std::filesystem::path& dir);

  Checkpoint(Checkpoint&&) = default;
  Checkpoint& operator=(Checkpoint&&) = default;

  bool repo_done(const std::string& name) const;
  util::Status mark_repo_done(const std::string& name);

  bool has_layer(const digest::Digest& digest) const;
  /// Bytes of a checkpointed layer (they were digest-verified before being
  /// admitted, so readers may trust them).
  util::Result<blob::BlobPtr> layer(const digest::Digest& digest) const;
  /// Persist a verified layer: bytes first, journal line second.
  util::Status put_layer(const digest::Digest& digest,
                         const std::string& content);

  std::size_t repos_completed() const;
  std::size_t layers_recorded() const;
  const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  Checkpoint(std::filesystem::path dir, blob::DiskStore store)
      : dir_(std::move(dir)), store_(std::move(store)) {}

  util::Status append_line(const std::string& line);

  std::filesystem::path dir_;
  blob::DiskStore store_;
  // Behind unique_ptr so Checkpoint stays movable (Result<T> needs a
  // movable T).
  mutable std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
  std::unordered_set<std::string> repos_;
  std::unordered_set<digest::Digest, digest::DigestHash> layers_;
  std::ofstream journal_;
};

}  // namespace dockmine::downloader
