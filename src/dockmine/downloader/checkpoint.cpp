#include "dockmine/downloader/checkpoint.h"

#include "dockmine/obs/obs.h"

namespace dockmine::downloader {

namespace {
constexpr char kRepoPrefix[] = "repo ";
constexpr char kLayerPrefix[] = "layer ";

struct CheckpointMetrics {
  obs::Counter& journal_writes;
  obs::Counter& layer_bytes;

  static CheckpointMetrics& get() {
    auto& reg = obs::Registry::global();
    static CheckpointMetrics m{
        reg.counter("dockmine_checkpoint_journal_writes_total"),
        reg.counter("dockmine_checkpoint_layer_bytes_total")};
    return m;
  }
};

}  // namespace

util::Result<Checkpoint> Checkpoint::open(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::internal("checkpoint mkdir '" + dir.string() +
                          "': " + ec.message());
  }
  auto store = blob::DiskStore::open(dir / "blobs");
  if (!store.ok()) return std::move(store).error();

  Checkpoint checkpoint(dir, std::move(store).value());
  const std::filesystem::path journal_path = dir / "completed.log";
  {
    std::ifstream in(journal_path);
    std::string line;
    std::uintmax_t complete_bytes = 0;
    bool torn = false;
    while (std::getline(in, line)) {
      // getline() hands back a final unterminated fragment too; that is
      // exactly the torn tail a mid-append kill leaves, so drop it — and
      // truncate it from the file below, or the next append would fuse
      // onto the fragment and corrupt an unrelated record.
      if (in.eof() && !line.empty()) {
        torn = true;
        break;
      }
      complete_bytes += line.size() + 1;
      if (line.rfind(kRepoPrefix, 0) == 0) {
        checkpoint.repos_.insert(line.substr(sizeof kRepoPrefix - 1));
      } else if (line.rfind(kLayerPrefix, 0) == 0) {
        auto digest =
            digest::Digest::parse(line.substr(sizeof kLayerPrefix - 1));
        // A journal line without its blob (or a torn/unparseable trailing
        // line) means the kill landed between the two writes; drop it and
        // the layer is simply re-fetched.
        if (digest.ok() && checkpoint.store_.contains(digest.value())) {
          checkpoint.layers_.insert(digest.value());
        }
      }
    }
    if (torn) {
      in.close();
      std::error_code trunc_ec;
      std::filesystem::resize_file(journal_path, complete_bytes, trunc_ec);
      if (trunc_ec) {
        return util::internal("checkpoint journal '" + journal_path.string() +
                              "' has a torn tail that could not be "
                              "truncated: " + trunc_ec.message());
      }
    }
  }
  checkpoint.journal_.open(journal_path, std::ios::app);
  if (!checkpoint.journal_) {
    return util::internal("checkpoint journal '" + journal_path.string() +
                          "' not writable");
  }
  return checkpoint;
}

util::Status Checkpoint::append_line(const std::string& line) {
  journal_ << line << '\n';
  journal_.flush();
  if (!journal_) return util::internal("checkpoint journal write failed");
  CheckpointMetrics::get().journal_writes.add();
  return util::Status::success();
}

bool Checkpoint::repo_done(const std::string& name) const {
  std::lock_guard lock(*mutex_);
  return repos_.count(name) != 0;
}

util::Status Checkpoint::mark_repo_done(const std::string& name) {
  std::lock_guard lock(*mutex_);
  if (!repos_.insert(name).second) return util::Status::success();
  return append_line(kRepoPrefix + name);
}

bool Checkpoint::has_layer(const digest::Digest& digest) const {
  std::lock_guard lock(*mutex_);
  return layers_.count(digest) != 0;
}

util::Result<blob::BlobPtr> Checkpoint::layer(
    const digest::Digest& digest) const {
  auto content = store_.get(digest);
  if (!content.ok()) return std::move(content).error();
  return std::make_shared<const std::string>(std::move(content).value());
}

util::Status Checkpoint::put_layer(const digest::Digest& digest,
                                   const std::string& content) {
  {
    std::lock_guard lock(*mutex_);
    if (layers_.count(digest) != 0) return util::Status::success();
  }
  // Bytes first (atomic temp+rename inside DiskStore), journal line second:
  // a kill between the two leaves an orphan blob, never a dangling record.
  auto stored = store_.put_with_digest(digest, content);
  if (!stored.ok()) return stored;
  CheckpointMetrics::get().layer_bytes.add(content.size());
  std::lock_guard lock(*mutex_);
  if (!layers_.insert(digest).second) return util::Status::success();
  return append_line(kLayerPrefix + digest.to_string());
}

std::size_t Checkpoint::repos_completed() const {
  std::lock_guard lock(*mutex_);
  return repos_.size();
}

std::size_t Checkpoint::layers_recorded() const {
  std::lock_guard lock(*mutex_);
  return layers_.size();
}

}  // namespace dockmine::downloader
