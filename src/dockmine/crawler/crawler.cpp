#include "dockmine/crawler/crawler.h"

#include <unordered_set>

#include "dockmine/obs/obs.h"

namespace dockmine::crawler {

namespace {

struct CrawlerMetrics {
  obs::Counter& pages;
  obs::Counter& page_retries;
  obs::Counter& page_failures;
  obs::Counter& hits;
  obs::Counter& duplicates;

  static CrawlerMetrics& get() {
    auto& reg = obs::Registry::global();
    static CrawlerMetrics m{
        reg.counter("dockmine_crawler_pages_total"),
        reg.counter("dockmine_crawler_page_retries_total"),
        reg.counter("dockmine_crawler_page_failures_total"),
        reg.counter("dockmine_crawler_hits_total"),
        reg.counter("dockmine_crawler_duplicates_total")};
    return m;
  }
};

}  // namespace

void Crawler::crawl_into(const std::string& query, bool officials_only,
                         CrawlResult& result) const {
  CrawlerMetrics& metrics = CrawlerMetrics::get();
  std::unordered_set<std::string> seen(result.repositories.begin(),
                                       result.repositories.end());
  for (std::uint64_t page_no = 0;; ++page_no) {
    registry::SearchPage page;
    bool fetched = false;
    for (int attempt = 1; attempt <= max_page_attempts_; ++attempt) {
      auto fetched_page = index_.try_page(query, page_no, page_size_);
      if (fetched_page.ok()) {
        page = std::move(fetched_page).value();
        fetched = true;
        break;
      }
      if (!fetched_page.error().retryable() ||
          attempt == max_page_attempts_) {
        break;
      }
      ++result.pages_retried;
      metrics.page_retries.add();
    }
    if (!fetched) {
      // Without this page we cannot trust has_next; abort the query so the
      // truncation is explicit instead of an undetectably shorter crawl.
      ++result.pages_failed;
      metrics.page_failures.add();
      return;
    }
    ++result.pages_fetched;
    metrics.pages.add();
    for (const registry::SearchHit& hit : page.hits) {
      if (officials_only && hit.repository.find('/') != std::string::npos) {
        continue;
      }
      ++result.raw_hits;
      metrics.hits.add();
      if (seen.insert(hit.repository).second) {
        result.repositories.push_back(hit.repository);
      } else {
        ++result.duplicates_removed;
        metrics.duplicates.add();
      }
    }
    if (!page.has_next) break;
  }
}

CrawlResult Crawler::crawl(const std::string& query) const {
  CrawlResult result;
  crawl_into(query, /*officials_only=*/false, result);
  return result;
}

CrawlResult Crawler::crawl_all() const {
  CrawlResult result;
  crawl_into("/", /*officials_only=*/false, result);
  crawl_into("", /*officials_only=*/true, result);
  return result;
}

}  // namespace dockmine::crawler
