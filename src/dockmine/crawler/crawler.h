// Repository-list crawler (paper §III-A, Fig. 2 stage 1).
//
// Walks the hub search facade page by page: query "/" enumerates every
// non-official repository (names contain the user/name separator), the
// official roster is collected by filtering the full index for slash-less
// names. Raw hits contain duplicates (Docker Hub indexing artifacts); the
// crawler deduplicates — the paper went from 634,412 raw hits to 457,627
// distinct repositories.
//
// Pages that fail with a *transient* error (503, timeout, reset — the
// staple diet of a weeks-long crawl against a public service) are retried
// up to a bounded number of attempts; permanent errors and exhausted
// retries abort the query and are counted, so a truncated crawl is visible
// in the result rather than silently shorter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/registry/search.h"

namespace dockmine::crawler {

struct CrawlResult {
  std::vector<std::string> repositories;  ///< distinct, discovery order
  std::uint64_t raw_hits = 0;
  std::uint64_t duplicates_removed = 0;
  std::uint64_t pages_fetched = 0;
  std::uint64_t pages_retried = 0;   ///< extra attempts after transient errors
  std::uint64_t pages_failed = 0;    ///< pages abandoned (aborts the query)
};

class Crawler {
 public:
  explicit Crawler(const registry::SearchBackend& index,
                   std::size_t page_size = 100,
                   int max_page_attempts = 4)
      : index_(index),
        page_size_(page_size),
        max_page_attempts_(max_page_attempts) {}

  /// Enumerate repositories matching `query` (see SearchIndex::page).
  CrawlResult crawl(const std::string& query) const;

  /// The paper's full enumeration: non-officials via the "/" query, then
  /// officials from the complete index.
  CrawlResult crawl_all() const;

 private:
  void crawl_into(const std::string& query, bool officials_only,
                  CrawlResult& result) const;

  const registry::SearchBackend& index_;
  std::size_t page_size_;
  int max_page_attempts_;
};

}  // namespace dockmine::crawler
