#include "dockmine/http/server.h"

#include <poll.h>
#include <unistd.h>

#include "dockmine/util/log.h"

namespace dockmine::http {

util::Status Server::start() {
  auto bound = listener_.bind_loopback(requested_port_);
  if (!bound.ok()) return bound;
  if (::pipe(wake_pipe_) != 0) return util::internal("pipe failed");
  stopping_.store(false);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  poller_ = std::thread([this] { poll_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
  return util::Status::success();
}

void Server::wake_poller() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::to_poller(ConnectionPtr connection) {
  {
    std::lock_guard lock(poll_mutex_);
    idle_.push_back(std::move(connection));
  }
  wake_poller();
}

void Server::to_workers(ConnectionPtr connection) {
  {
    std::lock_guard lock(work_mutex_);
    ready_.push_back(std::move(connection));
  }
  work_cv_.notify_one();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    auto accepted = listener_.accept_one();
    if (!accepted.ok()) return;  // listener closed (stop())
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(accepted).value();
    // Fresh connections go straight to the poller; the client speaks first.
    to_poller(std::move(connection));
  }
}

void Server::poll_loop() {
  std::vector<ConnectionPtr> watching;
  std::vector<pollfd> fds;
  while (!stopping_.load()) {
    {
      std::lock_guard lock(poll_mutex_);
      for (auto& connection : idle_) watching.push_back(std::move(connection));
      idle_.clear();
    }
    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const auto& connection : watching) {
      fds.push_back(pollfd{connection->socket.fd(), POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), 250);
    if (stopping_.load()) return;
    if (rc < 0) continue;  // EINTR
    if (fds[0].revents & POLLIN) {
      char drain[64];
      [[maybe_unused]] const ssize_t n =
          ::read(wake_pipe_[0], drain, sizeof drain);
    }
    // Move readable (or hung-up) connections to the workers.
    std::vector<ConnectionPtr> keep;
    keep.reserve(watching.size());
    for (std::size_t i = 0; i < watching.size(); ++i) {
      const short events = fds[i + 1].revents;
      if (events & (POLLIN | POLLHUP | POLLERR)) {
        to_workers(std::move(watching[i]));
      } else {
        keep.push_back(std::move(watching[i]));
      }
    }
    watching = std::move(keep);
  }
}

bool Server::pump(Connection& connection) {
  auto bytes = connection.socket.read_some();
  if (!bytes.ok() || bytes.value().empty()) return false;  // peer closed
  connection.reader.feed(bytes.value());

  Request request;
  for (;;) {
    auto ready = connection.reader.next_request(request);
    if (!ready.ok()) return false;  // malformed: drop
    if (!ready.value()) return true;  // need more bytes: back to poller
    Response response = handler_(request);
    requests_.fetch_add(1, std::memory_order_relaxed);
    const bool close_requested =
        find_header(request.headers, "Connection") == "close";
    if (close_requested) {
      response.headers.emplace_back("Connection", "close");
    }
    if (!connection.socket.write_all(response.serialize()).ok()) return false;
    if (close_requested) return false;
  }
}

void Server::worker_loop() {
  for (;;) {
    ConnectionPtr connection;
    {
      std::unique_lock lock(work_mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_.load() || !ready_.empty();
      });
      if (stopping_.load()) return;
      connection = std::move(ready_.front());
      ready_.pop_front();
    }
    if (pump(*connection)) {
      to_poller(std::move(connection));
    }
    // else: dropped; Socket destructor closes it.
  }
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();   // unblocks accept
  wake_poller();       // unblocks poll
  work_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  if (poller_.joinable()) poller_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace dockmine::http
