// Minimal HTTP/1.1 message model: requests, responses, and the wire codec.
//
// The Docker registry protocol is plain HTTP ("calls the Docker registry
// API directly", paper §III-B). This is a deliberately small, blocking
// HTTP/1.1 subset — GET-oriented, Content-Length framing, keep-alive —
// enough to serve and consume the Registry V2 surface over real sockets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dockmine/util/error.h"

namespace dockmine::http {

using Headers = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive header lookup; empty view when absent.
std::string_view find_header(const Headers& headers, std::string_view name);

struct Request {
  std::string method = "GET";
  std::string target = "/";   ///< origin-form, may carry a query string
  Headers headers;
  std::string body;

  /// Path without the query string.
  std::string_view path() const;
  /// Value of a query parameter ("" when absent). No %-decoding beyond
  /// '+' -> ' ' (the gateway's parameters are all URL-safe).
  std::string query_param(std::string_view key) const;

  std::string serialize() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  std::string serialize() const;

  static Response make(int status, std::string body,
                       std::string content_type = "application/json");
};

/// Incremental wire parser: feed bytes, take complete messages.
/// Handles pipelined/keep-alive streams; only Content-Length framing
/// (no chunked encoding — the registry gateway never emits it).
class MessageReader {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Try to extract one complete request. Returns kOk-empty optional
  /// pattern via Result: value present => a message was consumed.
  /// kCorrupt on malformed head.
  util::Result<bool> next_request(Request& out);
  util::Result<bool> next_response(Response& out);

  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  util::Result<bool> split_head(std::string& head, std::string& body);

  std::string buffer_;
};

}  // namespace dockmine::http
