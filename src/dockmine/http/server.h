// Blocking-handler HTTP/1.1 server with a poll-based connection
// multiplexer: an acceptor thread admits connections, a poller thread
// watches idle keep-alive connections for readability, and a worker pool
// runs the handler. Workers never block on idle connections, so any number
// of keep-alive clients can be served by a small pool (thread-per-
// connection designs deadlock once clients hold more idle connections
// than there are threads).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dockmine/http/message.h"
#include "dockmine/http/socket.h"

namespace dockmine::http {

using Handler = std::function<Response(const Request&)>;

class Server {
 public:
  /// `port == 0` picks an ephemeral port (see port() after start()).
  Server(Handler handler, std::uint16_t port = 0, std::size_t workers = 4)
      : handler_(std::move(handler)), requested_port_(port),
        worker_count_(workers) {}
  ~Server() { stop(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  util::Status start();
  void stop();

  std::uint16_t port() const noexcept { return listener_.port(); }
  std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  /// One client connection and its parse state, shuttled between the
  /// poller (idle) and the workers (has readable data).
  struct Connection {
    Socket socket;
    MessageReader reader;
  };
  using ConnectionPtr = std::unique_ptr<Connection>;

  void accept_loop();
  void poll_loop();
  void worker_loop();
  /// Read once, serve every complete request; returns false when the
  /// connection should be dropped.
  bool pump(Connection& connection);
  void to_poller(ConnectionPtr connection);
  void to_workers(ConnectionPtr connection);
  void wake_poller();

  Handler handler_;
  std::uint16_t requested_port_;
  std::size_t worker_count_;
  Listener listener_;

  std::thread acceptor_;
  std::thread poller_;
  std::vector<std::thread> workers_;

  std::mutex poll_mutex_;
  std::vector<ConnectionPtr> idle_;      // handed to the poller
  int wake_pipe_[2] = {-1, -1};          // self-pipe to interrupt poll()

  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<ConnectionPtr> ready_;      // readable connections

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace dockmine::http
