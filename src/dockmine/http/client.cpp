#include "dockmine/http/client.h"

namespace dockmine::http {

util::Result<Response> Client::round_trip(Socket& connection,
                                          const Request& request) {
  auto sent = connection.write_all(request.serialize());
  if (!sent.ok()) return sent.error();
  MessageReader reader;
  Response response;
  for (;;) {
    auto ready = reader.next_response(response);
    if (!ready.ok()) return std::move(ready).error();
    if (ready.value()) return response;
    auto bytes = connection.read_some();
    if (!bytes.ok()) return std::move(bytes).error();
    if (bytes.value().empty()) {
      return util::corrupt("connection closed mid-response");
    }
    reader.feed(bytes.value());
  }
}

util::Result<Response> Client::request(const Request& request) {
  // Check out an idle connection, or dial.
  Socket connection;
  {
    std::lock_guard lock(pool_mutex_);
    if (!idle_.empty()) {
      connection = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  bool fresh = false;
  if (!connection.valid()) {
    auto dialed = Socket::connect_loopback(port_);
    if (!dialed.ok()) return std::move(dialed).error();
    connection = std::move(dialed).value();
    fresh = true;
  }

  auto response = round_trip(connection, request);
  if (!response.ok() && !fresh) {
    // Stale keep-alive connection: dial once and retry.
    auto dialed = Socket::connect_loopback(port_);
    if (!dialed.ok()) return std::move(dialed).error();
    connection = std::move(dialed).value();
    response = round_trip(connection, request);
  }
  if (response.ok()) {
    std::lock_guard lock(pool_mutex_);
    idle_.push_back(std::move(connection));
  }
  return response;
}

}  // namespace dockmine::http
