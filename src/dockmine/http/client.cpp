#include "dockmine/http/client.h"

namespace dockmine::http {

util::Result<Response> Client::round_trip(Socket& connection,
                                          const Request& request) {
  auto sent = connection.write_all(request.serialize());
  if (!sent.ok()) return sent.error();
  MessageReader reader;
  Response response;
  for (;;) {
    auto ready = reader.next_response(response);
    if (!ready.ok()) return std::move(ready).error();
    if (ready.value()) return response;
    auto bytes = connection.read_some();
    if (!bytes.ok()) return std::move(bytes).error();
    if (bytes.value().empty()) {
      // Peer closed with a response outstanding: a torn connection, not a
      // malformed message — retryable, unlike a parse failure.
      return util::reset("connection closed mid-response");
    }
    reader.feed(bytes.value());
  }
}

util::Result<Socket> Client::dial() {
  auto dialed = Socket::connect_loopback(port_);
  if (!dialed.ok()) return dialed;
  if (options_.timeout_ms != 0) {
    auto deadline = dialed.value().set_timeout_ms(options_.timeout_ms);
    if (!deadline.ok()) return deadline.error();
  }
  return dialed;
}

util::Result<Response> Client::request(const Request& request) {
  // Check out an idle connection, or dial.
  Socket connection;
  {
    std::lock_guard lock(pool_mutex_);
    if (!idle_.empty()) {
      connection = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  bool pooled = connection.valid();
  if (!pooled) {
    auto dialed = dial();
    if (!dialed.ok()) return std::move(dialed).error();
    connection = std::move(dialed).value();
  }

  auto response = round_trip(connection, request);
  // A pooled connection may have gone stale (server-side keep-alive close);
  // on failure, dial fresh connections up to the configured bound. A timeout
  // is not retried here — the deadline already elapsed once, and the caller's
  // retry policy owns how much longer to wait.
  std::uint32_t redials = 0;
  while (!response.ok() && pooled &&
         response.error().code() != util::ErrorCode::kTimeout &&
         redials < options_.max_redials) {
    ++redials;
    auto dialed = dial();
    if (!dialed.ok()) return std::move(dialed).error();
    connection = std::move(dialed).value();
    pooled = false;  // fresh connection: a second failure is genuine
    response = round_trip(connection, request);
  }
  if (response.ok()) {
    std::lock_guard lock(pool_mutex_);
    idle_.push_back(std::move(connection));
  }
  return response;
}

}  // namespace dockmine::http
