#include "dockmine/http/client.h"

#include "dockmine/obs/obs.h"

namespace dockmine::http {

namespace {

/// Instrument handles resolved once; the per-request path touches only the
/// instruments themselves (see obs.h for the cost contract).
struct ClientMetrics {
  obs::Counter& requests;
  obs::Counter& failures;
  obs::Counter& timeouts;
  obs::Counter& redials;
  obs::Counter& bytes_out;
  obs::Counter& bytes_in;
  obs::Histogram& request_ms;

  static ClientMetrics& get() {
    static ClientMetrics m{
        obs::Registry::global().counter("dockmine_http_requests_total"),
        obs::Registry::global().counter("dockmine_http_request_failures_total"),
        obs::Registry::global().counter("dockmine_http_timeouts_total"),
        obs::Registry::global().counter("dockmine_http_redials_total"),
        obs::Registry::global().counter("dockmine_http_bytes_out_total"),
        obs::Registry::global().counter("dockmine_http_bytes_in_total"),
        obs::Registry::global().histogram("dockmine_http_request_ms")};
    return m;
  }
};

}  // namespace

util::Result<Response> Client::round_trip(Socket& connection,
                                          const Request& request) {
  const std::string wire = request.serialize();
  ClientMetrics::get().bytes_out.add(wire.size());
  auto sent = connection.write_all(wire);
  if (!sent.ok()) return sent.error();
  MessageReader reader;
  Response response;
  for (;;) {
    auto ready = reader.next_response(response);
    if (!ready.ok()) return std::move(ready).error();
    if (ready.value()) return response;
    auto bytes = connection.read_some();
    if (!bytes.ok()) return std::move(bytes).error();
    if (bytes.value().empty()) {
      // Peer closed with a response outstanding: a torn connection, not a
      // malformed message — retryable, unlike a parse failure.
      return util::reset("connection closed mid-response");
    }
    reader.feed(bytes.value());
  }
}

util::Result<Socket> Client::dial() {
  auto dialed = Socket::connect_loopback(port_);
  if (!dialed.ok()) return dialed;
  if (options_.timeout_ms != 0) {
    auto deadline = dialed.value().set_timeout_ms(options_.timeout_ms);
    if (!deadline.ok()) return deadline.error();
  }
  return dialed;
}

util::Result<Response> Client::request(const Request& request) {
  ClientMetrics& metrics = ClientMetrics::get();
  metrics.requests.add();
  const obs::Timer timer;

  // Check out an idle connection, or dial.
  Socket connection;
  {
    std::lock_guard lock(pool_mutex_);
    if (!idle_.empty()) {
      connection = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  bool pooled = connection.valid();
  if (!pooled) {
    auto dialed = dial();
    if (!dialed.ok()) {
      metrics.failures.add();
      return std::move(dialed).error();
    }
    connection = std::move(dialed).value();
  }

  auto response = round_trip(connection, request);
  // A pooled connection may have gone stale (server-side keep-alive close);
  // on failure, dial fresh connections up to the configured bound. A timeout
  // is not retried here — the deadline already elapsed once, and the caller's
  // retry policy owns how much longer to wait.
  std::uint32_t redials = 0;
  while (!response.ok() && pooled &&
         response.error().code() != util::ErrorCode::kTimeout &&
         redials < options_.max_redials) {
    ++redials;
    metrics.redials.add();
    auto dialed = dial();
    if (!dialed.ok()) {
      metrics.failures.add();
      return std::move(dialed).error();
    }
    connection = std::move(dialed).value();
    pooled = false;  // fresh connection: a second failure is genuine
    response = round_trip(connection, request);
  }
  metrics.request_ms.observe(timer.ms());
  if (response.ok()) {
    metrics.bytes_in.add(response.value().body.size());
    std::lock_guard lock(pool_mutex_);
    idle_.push_back(std::move(connection));
  } else {
    metrics.failures.add();
    if (response.error().code() == util::ErrorCode::kTimeout) {
      metrics.timeouts.add();
    }
  }
  return response;
}

}  // namespace dockmine::http
