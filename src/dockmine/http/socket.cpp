#include "dockmine/http/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dockmine::http {

util::Error classify_errno(int err, const char* what) {
  const std::string detail = std::string(what) + ": " + std::strerror(err);
  // Classify into retry categories: deadline and torn-connection errors are
  // transient (a later attempt may succeed), and so is descriptor/buffer
  // exhaustion — an accept loop seeing EMFILE must back off until
  // connections drain, not treat the listener as broken. Everything else is
  // internal.
  if (err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT) {
    return util::timeout(detail);
  }
  if (err == ECONNRESET || err == EPIPE || err == ECONNABORTED ||
      err == ECONNREFUSED) {
    return util::reset(detail);
  }
  if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
    return util::unavailable(detail);
  }
  return util::internal(detail);
}

namespace {
util::Error errno_error(const char* what) {
  return classify_errno(errno, what);
}
}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

util::Status Socket::set_timeout_ms(std::uint32_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) != 0) {
    return errno_error("setsockopt(SO_*TIMEO)");
  }
  return util::Status::success();
}

util::Status Socket::write_all(std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return util::Status::success();
}

util::Result<std::string> Socket::read_some(std::size_t max) {
  std::string buffer(max, '\0');
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    buffer.resize(static_cast<std::size_t>(n));
    return buffer;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<Socket> Socket::connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  Socket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return errno_error("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return socket;
}

util::Status Listener::bind_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  fd_.store(fd, std::memory_order_release);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return errno_error("bind");
  }
  if (::listen(fd, 64) != 0) return errno_error("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_error("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  return util::Status::success();
}

util::Result<Socket> Listener::accept_one() {
  for (;;) {
    const int fd = ::accept(fd_.load(std::memory_order_acquire), nullptr,
                            nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return errno_error("accept");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Socket(fd);
  }
}

void Listener::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace dockmine::http
