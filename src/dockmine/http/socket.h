// Thin RAII layer over POSIX TCP sockets (loopback-oriented).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "dockmine/util/error.h"

namespace dockmine::http {

/// Classify a socket-layer errno into the retry taxonomy (exposed so the
/// serve accept-loop tests can pin the mapping without provoking real
/// descriptor exhaustion):
///   * deadline errors (EAGAIN/EWOULDBLOCK/ETIMEDOUT)        -> kTimeout
///   * torn connections (ECONNRESET/EPIPE/ECONNABORTED/...)  -> kReset
///   * resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM)    -> kUnavailable
///   * everything else                                       -> kInternal
/// The first three are retryable: an accept loop that sees EMFILE must back
/// off and try again once connections drain, not abort the accept thread.
util::Error classify_errno(int err, const char* what);

/// Connected stream socket. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Deadline for each subsequent send/recv on this socket (SO_SNDTIMEO /
  /// SO_RCVTIMEO). 0 disables. An elapsed deadline surfaces as
  /// ErrorCode::kTimeout; a peer-dropped connection as kReset — both
  /// retryable categories, so resilient callers can compose with this layer.
  util::Status set_timeout_ms(std::uint32_t timeout_ms);

  /// Write the whole buffer (loops over partial writes).
  util::Status write_all(std::string_view data);

  /// Read up to `max` bytes; 0 bytes => peer closed.
  util::Result<std::string> read_some(std::size_t max = 64 * 1024);

  /// ::shutdown(SHUT_RDWR): unblocks a reader thread parked in read_some()
  /// (it sees 0 bytes / kReset) without racing fd reuse the way a
  /// cross-thread close() would. The descriptor stays owned; close() still
  /// runs on destruction.
  void shutdown_both() noexcept;

  void close() noexcept;

  /// Connect to 127.0.0.1:port.
  static util::Result<Socket> connect_loopback(std::uint16_t port);

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 on an ephemeral (or given) port.
/// close() may be called from another thread to unblock accept_one() (the
/// server's stop path), so the descriptor is atomic.
class Listener {
 public:
  util::Status bind_loopback(std::uint16_t port = 0);
  util::Result<Socket> accept_one();
  std::uint16_t port() const noexcept { return port_; }
  void close() noexcept;
  bool valid() const noexcept { return fd_.load(std::memory_order_acquire) >= 0; }
  ~Listener() { close(); }

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace dockmine::http
