// Blocking HTTP/1.1 client with a keep-alive connection pool, safe for
// concurrent callers (each request checks out a connection; broken
// connections are re-dialed once).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "dockmine/http/message.h"
#include "dockmine/http/socket.h"

namespace dockmine::http {

class Client {
 public:
  explicit Client(std::uint16_t port) : port_(port) {}

  /// Issue one request; thread-safe.
  util::Result<Response> request(const Request& request);

  std::uint16_t port() const noexcept { return port_; }

 private:
  util::Result<Response> round_trip(Socket& connection, const Request& request);

  std::uint16_t port_;
  std::mutex pool_mutex_;
  std::vector<Socket> idle_;
};

}  // namespace dockmine::http
