// Blocking HTTP/1.1 client with a keep-alive connection pool, safe for
// concurrent callers (each request checks out a connection; broken
// connections are re-dialed a bounded number of times, each attempt under
// an optional per-request deadline).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "dockmine/http/message.h"
#include "dockmine/http/socket.h"

namespace dockmine::http {

struct ClientOptions {
  /// Socket send/recv deadline per request attempt; 0 disables. An elapsed
  /// deadline returns ErrorCode::kTimeout (a retryable category), so a
  /// resilient caller above this client composes cleanly.
  std::uint32_t timeout_ms = 0;
  /// How many fresh connections to dial after a failed attempt on a
  /// (possibly stale) pooled connection. 1 reproduces the historical
  /// "re-dial exactly once" behaviour.
  std::uint32_t max_redials = 1;
};

class Client {
 public:
  explicit Client(std::uint16_t port, ClientOptions options = {})
      : port_(port), options_(options) {}

  /// Issue one request; thread-safe.
  util::Result<Response> request(const Request& request);

  std::uint16_t port() const noexcept { return port_; }
  const ClientOptions& options() const noexcept { return options_; }

 private:
  util::Result<Response> round_trip(Socket& connection, const Request& request);
  util::Result<Socket> dial();

  std::uint16_t port_;
  ClientOptions options_;
  std::mutex pool_mutex_;
  std::vector<Socket> idle_;
};

}  // namespace dockmine::http
