#include "dockmine/http/message.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace dockmine::http {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void append_headers(std::string& out, const Headers& headers,
                    std::size_t body_size) {
  bool have_length = false;
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
    if (iequals(name, "Content-Length")) have_length = true;
  }
  if (!have_length) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

/// Parse "Name: value" lines out of a head block (after the start line).
util::Status parse_header_lines(std::string_view head, Headers& out) {
  std::size_t pos = 0;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    const std::string_view line =
        head.substr(pos, eol == std::string_view::npos ? head.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return util::corrupt("http header line without ':'");
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    out.emplace_back(std::string(line.substr(0, colon)), std::string(value));
  }
  return util::Status::success();
}

}  // namespace

std::string_view find_header(const Headers& headers, std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

std::string_view Request::path() const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string Request::query_param(std::string_view key) const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  if (q == std::string_view::npos) return {};
  std::string_view query = t.substr(q + 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      std::string value(pair.substr(eq + 1));
      std::replace(value.begin(), value.end(), '+', ' ');
      return value;
    }
  }
  return {};
}

std::string Request::serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  append_headers(out, headers, body.size());
  out += body;
  return out;
}

std::string Response::serialize() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  append_headers(out, headers, body.size());
  out += body;
  return out;
}

Response Response::make(int status, std::string body,
                        std::string content_type) {
  Response response;
  response.status = status;
  switch (status) {
    case 200: response.reason = "OK"; break;
    case 400: response.reason = "Bad Request"; break;
    case 401: response.reason = "Unauthorized"; break;
    case 404: response.reason = "Not Found"; break;
    case 405: response.reason = "Method Not Allowed"; break;
    default: response.reason = "Status"; break;
  }
  response.headers.emplace_back("Content-Type", std::move(content_type));
  response.body = std::move(body);
  return response;
}

util::Result<bool> MessageReader::split_head(std::string& head,
                                             std::string& body) {
  const std::size_t end = buffer_.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (buffer_.size() > 64 * 1024) {
      return util::corrupt("http head exceeds 64 KiB");
    }
    return false;
  }
  const std::string_view head_view(buffer_.data(), end);

  std::size_t content_length = 0;
  Headers scratch;
  const std::size_t start_line_end = head_view.find("\r\n");
  if (start_line_end == std::string_view::npos) {
    return util::corrupt("http head without start line");
  }
  auto parsed = parse_header_lines(head_view.substr(start_line_end + 2),
                                   scratch);
  if (!parsed.ok()) return parsed.error();
  const std::string_view length = find_header(scratch, "Content-Length");
  if (!length.empty()) {
    const auto [ptr, ec] = std::from_chars(
        length.data(), length.data() + length.size(), content_length);
    if (ec != std::errc() || ptr != length.data() + length.size()) {
      return util::corrupt("bad Content-Length");
    }
  }

  const std::size_t total = end + 4 + content_length;
  if (buffer_.size() < total) return false;  // body still in flight
  head = buffer_.substr(0, end);
  body = buffer_.substr(end + 4, content_length);
  buffer_.erase(0, total);
  return true;
}

util::Result<bool> MessageReader::next_request(Request& out) {
  std::string head, body;
  auto ready = split_head(head, body);
  if (!ready.ok() || !ready.value()) return ready;

  const std::string_view head_view = head;
  const std::size_t line_end = head_view.find("\r\n");
  const std::string_view start =
      head_view.substr(0, std::min(line_end, head_view.size()));
  const std::size_t sp1 = start.find(' ');
  const std::size_t sp2 = start.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 <= sp1) {
    return util::corrupt("bad request line");
  }
  out = Request{};
  out.method = std::string(start.substr(0, sp1));
  out.target = std::string(start.substr(sp1 + 1, sp2 - sp1 - 1));
  if (line_end != std::string_view::npos) {
    auto parsed = parse_header_lines(head_view.substr(line_end + 2),
                                     out.headers);
    if (!parsed.ok()) return parsed.error();
  }
  out.body = std::move(body);
  return true;
}

util::Result<bool> MessageReader::next_response(Response& out) {
  std::string head, body;
  auto ready = split_head(head, body);
  if (!ready.ok() || !ready.value()) return ready;

  const std::string_view head_view = head;
  const std::size_t line_end = head_view.find("\r\n");
  const std::string_view start =
      head_view.substr(0, std::min(line_end, head_view.size()));
  // "HTTP/1.1 200 OK"
  const std::size_t sp1 = start.find(' ');
  if (sp1 == std::string_view::npos) return util::corrupt("bad status line");
  const std::size_t sp2 = start.find(' ', sp1 + 1);
  out = Response{};
  int status = 0;
  const std::string_view code = start.substr(
      sp1 + 1, sp2 == std::string_view::npos ? start.size() - sp1 - 1
                                             : sp2 - sp1 - 1);
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), status);
  if (ec != std::errc() || ptr != code.data() + code.size()) {
    return util::corrupt("bad status code");
  }
  out.status = status;
  if (sp2 != std::string_view::npos) {
    out.reason = std::string(start.substr(sp2 + 1));
  }
  if (line_end != std::string_view::npos) {
    auto parsed = parse_header_lines(head_view.substr(line_end + 2),
                                     out.headers);
    if (!parsed.ok()) return parsed.error();
  }
  out.body = std::move(body);
  return true;
}

}  // namespace dockmine::http
