#include "dockmine/mem/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "dockmine/obs/obs.h"

// ASan integration: a reset arena poisons its retained capacity so any
// pointer that escaped the unit of work faults loudly on next use instead
// of reading recycled scratch. Plain builds compile the hooks away.
#if defined(__SANITIZE_ADDRESS__)
#define DOCKMINE_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DOCKMINE_ARENA_ASAN 1
#endif
#endif

#if defined(DOCKMINE_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#define DOCKMINE_ARENA_POISON(ptr, size) \
  __asan_poison_memory_region((ptr), (size))
#define DOCKMINE_ARENA_UNPOISON(ptr, size) \
  __asan_unpoison_memory_region((ptr), (size))
#else
#define DOCKMINE_ARENA_POISON(ptr, size) ((void)0)
#define DOCKMINE_ARENA_UNPOISON(ptr, size) ((void)0)
#endif

namespace dockmine::mem {

namespace {

std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1024;
  while (p < v) p <<= 1;
  return p;
}

struct ArenaMetrics {
  obs::Gauge& peak;
  obs::Counter& resets;

  static ArenaMetrics& get() {
    auto& reg = obs::Registry::global();
    static ArenaMetrics m{reg.gauge("dockmine_arena_peak_bytes"),
                          reg.counter("dockmine_arena_resets_total")};
    return m;
  }
};

/// Process-wide high-water maximum backing the peak gauge (Gauge has no
/// max-fold; arenas race to publish, the atomic keeps the max honest).
std::atomic<std::uint64_t> g_peak_bytes{0};

void publish_peak(std::size_t high_water) {
  std::uint64_t seen = g_peak_bytes.load(std::memory_order_relaxed);
  while (high_water > seen &&
         !g_peak_bytes.compare_exchange_weak(seen, high_water,
                                             std::memory_order_relaxed)) {
  }
  ArenaMetrics& metrics = ArenaMetrics::get();
  metrics.peak.set(static_cast<std::int64_t>(
      g_peak_bytes.load(std::memory_order_relaxed)));
  metrics.resets.add();
}

}  // namespace

Arena::Arena(std::size_t first_block_bytes)
    : first_block_bytes_(round_up_pow2(first_block_bytes)) {}

Arena::~Arena() { release_blocks(); }

void Arena::release_blocks() {
  for (Block& block : blocks_) {
    DOCKMINE_ARENA_UNPOISON(block.data, block.capacity);
    std::free(block.data);
  }
  blocks_.clear();
}

Arena::Block& Arena::grow(std::size_t min_bytes) {
  std::size_t want = blocks_.empty() ? first_block_bytes_
                                     : blocks_.back().capacity * 2;
  want = round_up_pow2(std::max(want, min_bytes));
  Block block;
  block.data = static_cast<char*>(std::malloc(want));
  if (block.data == nullptr) throw std::bad_alloc();
  block.capacity = want;
  DOCKMINE_ARENA_POISON(block.data, block.capacity);
  blocks_.push_back(block);
  active_ = blocks_.size() - 1;
  return blocks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (blocks_.empty()) grow(bytes + align);
  Block* block = &blocks_[active_];
  // Align the address, not the offset — malloc blocks only guarantee
  // max_align_t, so over-aligned requests need the pad computed from the
  // actual base pointer.
  auto aligned_offset = [align](const Block& b) {
    const auto addr = reinterpret_cast<std::uintptr_t>(b.data) + b.used;
    const auto aligned = (addr + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
    return b.used + static_cast<std::size_t>(aligned - addr);
  };
  std::size_t offset = aligned_offset(*block);
  if (offset + bytes > block->capacity) {
    // Charge the abandoned tail so high_water sizes the coalesced block
    // generously enough to avoid re-splitting next unit.
    used_ += block->capacity - block->used;
    block->used = block->capacity;
    block = &grow(bytes + align);
    offset = aligned_offset(*block);
  }
  char* ptr = block->data + offset;
  used_ += (offset - block->used) + bytes;
  block->used = offset + bytes;
  if (used_ > high_water_) high_water_ = used_;
  DOCKMINE_ARENA_UNPOISON(ptr, bytes);
  return ptr;
}

std::string_view Arena::intern(std::string_view bytes) {
  if (bytes.empty()) return std::string_view{};
  char* copy = static_cast<char*>(allocate(bytes.size(), 1));
  std::memcpy(copy, bytes.data(), bytes.size());
  return std::string_view(copy, bytes.size());
}

void Arena::reset() {
  ++resets_;
  publish_peak(high_water_);
  if (blocks_.empty()) {
    used_ = 0;
    return;
  }
  if (blocks_.size() > 1) {
    // The unit overflowed the resident block: coalesce to one block that
    // holds the whole high-water working set, so the steady state is a
    // single bump region with no mid-unit growth.
    release_blocks();
    grow(high_water_);
  }
  Block& block = blocks_.front();
  block.used = 0;
  active_ = 0;
  used_ = 0;
  DOCKMINE_ARENA_POISON(block.data, block.capacity);
}

std::size_t Arena::bytes_reserved() const noexcept {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return total;
}

}  // namespace dockmine::mem
