// Reset-per-unit bump allocator for hot-path analysis scratch.
//
// The analyzer allocates per-file strings and map nodes while walking a
// layer tarball, then throws all of it away before the next layer. An
// Arena turns that churn into pointer bumps: allocate freely inside one
// unit of work, reset() once at the unit boundary, and the next unit
// reuses the same pages. Steady state performs zero heap traffic — the
// first reset coalesces all blocks into one sized to the observed high
// water, so later units bump within a single resident block.
//
// Lifetime rule (DESIGN.md §14): nothing allocated from an arena may
// escape the unit that reset()s it. Under AddressSanitizer the allocator
// enforces this — reset() poisons the retained block, so a stale pointer
// dereference reports use-after-poison instead of silently reading
// recycled scratch.
//
// Observability (off by default, like all obs instruments):
//   dockmine_arena_peak_bytes    max high-water across all arenas
//   dockmine_arena_resets_total  units of work completed
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace dockmine::mem {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 64 * 1024);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with the given power-of-two alignment. Never
  /// returns nullptr (grows by doubling blocks); bytes == 0 yields a
  /// valid, unique, zero-length allocation.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Copy `bytes` into the arena; binary-safe string interning. The view
  /// is valid until reset().
  std::string_view intern(std::string_view bytes);

  /// Construct a T in arena storage. T must be trivially destructible (the
  /// arena never runs destructors).
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// End the current unit of work: every allocation made since the last
  /// reset is invalidated (and poisoned under ASan), capacity is retained
  /// — coalesced into one block sized to the high-water mark — and
  /// bytes_used() returns to zero.
  void reset();

  /// Live bytes allocated since the last reset (including alignment pad).
  std::size_t bytes_used() const noexcept { return used_; }
  /// Block capacity currently owned by the arena.
  std::size_t bytes_reserved() const noexcept;
  /// Max bytes_used() ever observed, across resets.
  std::size_t high_water() const noexcept { return high_water_; }
  std::uint64_t resets() const noexcept { return resets_; }

 private:
  struct Block {
    char* data = nullptr;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  Block& grow(std::size_t min_bytes);
  void release_blocks();

  std::vector<Block> blocks_;
  std::size_t first_block_bytes_;
  std::size_t active_ = 0;      ///< index of the block being bumped
  std::size_t used_ = 0;        ///< total live bytes across blocks
  std::size_t high_water_ = 0;
  std::uint64_t resets_ = 0;
};

/// Minimal std allocator over an Arena, for per-unit containers (e.g. the
/// analyzer's directory map). deallocate() is a no-op — storage is
/// reclaimed wholesale by Arena::reset(), so the container must not
/// outlive the unit of work.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return !(a == b);
  }

 private:
  template <typename U>
  friend class ArenaAllocator;
  Arena* arena_;
};

}  // namespace dockmine::mem
