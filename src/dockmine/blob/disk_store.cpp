#include "dockmine/blob/disk_store.h"

#include <atomic>
#include <fstream>
#include <system_error>

namespace dockmine::blob {

namespace fs = std::filesystem;

util::Result<DiskStore> DiskStore::open(const fs::path& root) {
  std::error_code ec;
  fs::create_directories(root / "blobs" / "sha256", ec);
  if (ec) {
    return util::internal("create_directories: " + ec.message());
  }
  return DiskStore(root);
}

fs::path DiskStore::path_for(const digest::Digest& digest) const {
  const std::string hex = digest.to_string().substr(7);  // strip "sha256:"
  return root_ / "blobs" / "sha256" / hex.substr(0, 2) / hex / "data";
}

util::Result<digest::Digest> DiskStore::put(const std::string& content) {
  const digest::Digest digest = digest::Digest::of(content);
  auto stored = put_with_digest(digest, content);
  if (!stored.ok()) return stored.error();
  return digest;
}

util::Status DiskStore::put_with_digest(const digest::Digest& digest,
                                        const std::string& content) {
  const fs::path target = path_for(digest);
  std::error_code ec;
  if (fs::exists(target, ec)) return util::Status::success();
  fs::create_directories(target.parent_path(), ec);
  if (ec) return util::internal("create_directories: " + ec.message());

  // Unique temp name without per-store state (DiskStore stays movable).
  static std::atomic<std::uint64_t> temp_counter{0};
  const fs::path temp =
      target.parent_path() /
      ("tmp." + std::to_string(temp_counter.fetch_add(1)));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return util::internal("cannot open temp file " + temp.string());
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) return util::internal("short write to " + temp.string());
  }
  fs::rename(temp, target, ec);
  if (ec) {
    fs::remove(temp, ec);
    return util::internal("rename: " + ec.message());
  }
  return util::Status::success();
}

util::Result<std::string> DiskStore::get(const digest::Digest& digest) const {
  std::ifstream in(path_for(digest), std::ios::binary);
  if (!in) return util::not_found("blob " + digest.short_hex());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (!in.eof() && in.fail()) {
    return util::internal("read failed for " + digest.short_hex());
  }
  return content;
}

bool DiskStore::contains(const digest::Digest& digest) const {
  std::error_code ec;
  return fs::exists(path_for(digest), ec);
}

util::Result<std::uint64_t> DiskStore::stat(const digest::Digest& digest) const {
  std::error_code ec;
  const auto size = fs::file_size(path_for(digest), ec);
  if (ec) return util::not_found("blob " + digest.short_hex());
  return static_cast<std::uint64_t>(size);
}

util::Status DiskStore::remove(const digest::Digest& digest) {
  std::error_code ec;
  const fs::path target = path_for(digest);
  if (!fs::remove(target, ec)) {
    return util::not_found("blob " + digest.short_hex());
  }
  fs::remove(target.parent_path(), ec);  // prune the digest dir if empty
  return util::Status::success();
}

util::Status DiskStore::for_each_digest(
    const std::function<void(const digest::Digest&, std::uint64_t)>& fn)
    const {
  std::error_code ec;
  const fs::path base = root_ / "blobs" / "sha256";
  for (auto it = fs::recursive_directory_iterator(base, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec) || it->path().filename() != "data") continue;
    const std::string hex = it->path().parent_path().filename().string();
    auto parsed = digest::Digest::parse("sha256:" + hex);
    if (!parsed.ok()) continue;  // stray file; not ours
    fn(parsed.value(), static_cast<std::uint64_t>(it->file_size(ec)));
  }
  if (ec) return util::internal("walk: " + ec.message());
  return util::Status::success();
}

util::Result<DiskStore::Usage> DiskStore::usage() const {
  Usage usage;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().filename() == "data") {
      ++usage.blobs;
      usage.bytes += static_cast<std::uint64_t>(it->file_size(ec));
    }
  }
  if (ec) return util::internal("walk: " + ec.message());
  return usage;
}

}  // namespace dockmine::blob
