// Content-addressed blob store — the registry's storage backend.
//
// Blobs (gzipped layer tarballs, manifest/config JSON) are keyed by the
// SHA-256 of their bytes, exactly like Docker's registry storage. Identical
// content stored twice occupies one physical copy; the store tracks logical
// vs physical bytes, which is the mechanism behind the paper's layer-sharing
// estimate ("without layer sharing the dataset would grow from 47 TB to
// 85 TB", §V-A).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dockmine/digest/digest.h"
#include "dockmine/util/error.h"

namespace dockmine::blob {

using BlobPtr = std::shared_ptr<const std::string>;

struct StoreStats {
  std::uint64_t puts = 0;          ///< total put() calls
  std::uint64_t dedup_hits = 0;    ///< puts whose content already existed
  std::uint64_t physical_bytes = 0;
  std::uint64_t logical_bytes = 0; ///< sum of sizes over all puts
  std::uint64_t unique_blobs = 0;

  double dedup_ratio() const noexcept {
    return physical_bytes == 0
               ? 1.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(physical_bytes);
  }
};

/// Thread-safe in-memory store. Reads return shared ownership so callers can
/// hold blob bytes without lifetime coupling to the store.
class Store {
 public:
  Store() = default;

  /// Hash `content` and store it. Returns the digest.
  digest::Digest put(std::string content);

  /// Store under a caller-supplied digest. Used in metadata mode, where the
  /// digest comes from the synthetic id space instead of hashing bytes.
  /// Rejects an insert whose digest already maps to different-sized content.
  util::Status put_with_digest(const digest::Digest& digest,
                               std::string content);

  util::Result<BlobPtr> get(const digest::Digest& digest) const;
  bool contains(const digest::Digest& digest) const;

  /// Size of a stored blob without fetching it.
  util::Result<std::uint64_t> stat(const digest::Digest& digest) const;

  StoreStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<digest::Digest, BlobPtr, digest::DigestHash> blobs_;
  StoreStats stats_;
};

}  // namespace dockmine::blob
