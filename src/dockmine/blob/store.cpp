#include "dockmine/blob/store.h"

namespace dockmine::blob {

digest::Digest Store::put(std::string content) {
  const digest::Digest d = digest::Digest::of(content);
  (void)put_with_digest(d, std::move(content));
  return d;
}

util::Status Store::put_with_digest(const digest::Digest& digest,
                                    std::string content) {
  std::lock_guard lock(mutex_);
  ++stats_.puts;
  stats_.logical_bytes += content.size();
  const auto it = blobs_.find(digest);
  if (it != blobs_.end()) {
    if (it->second->size() != content.size()) {
      return util::invalid_argument("digest collision with mismatched size: " +
                                    digest.short_hex());
    }
    ++stats_.dedup_hits;
    return util::Status::success();
  }
  stats_.physical_bytes += content.size();
  ++stats_.unique_blobs;
  blobs_.emplace(digest, std::make_shared<const std::string>(std::move(content)));
  return util::Status::success();
}

util::Result<BlobPtr> Store::get(const digest::Digest& digest) const {
  std::lock_guard lock(mutex_);
  const auto it = blobs_.find(digest);
  if (it == blobs_.end()) {
    return util::not_found("blob " + digest.short_hex());
  }
  return it->second;
}

bool Store::contains(const digest::Digest& digest) const {
  std::lock_guard lock(mutex_);
  return blobs_.find(digest) != blobs_.end();
}

util::Result<std::uint64_t> Store::stat(const digest::Digest& digest) const {
  std::lock_guard lock(mutex_);
  const auto it = blobs_.find(digest);
  if (it == blobs_.end()) {
    return util::not_found("blob " + digest.short_hex());
  }
  return static_cast<std::uint64_t>(it->second->size());
}

StoreStats Store::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace dockmine::blob
