// On-disk content-addressed blob store, laid out the way Docker's registry
// stores blobs: <root>/blobs/sha256/<xx>/<digest>/data (xx = first two hex
// chars). Writes are atomic (temp file + rename); reads memory the file.
// Useful for snapshots bigger than RAM and for inspecting generated
// registries with ordinary shell tools.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>

#include "dockmine/blob/store.h"
#include "dockmine/digest/digest.h"
#include "dockmine/util/error.h"

namespace dockmine::blob {

class DiskStore {
 public:
  /// Opens (creating if needed) a store rooted at `root`.
  static util::Result<DiskStore> open(const std::filesystem::path& root);

  /// Hash and persist `content`; returns its digest. Idempotent: an
  /// existing blob is left untouched (content addressing).
  util::Result<digest::Digest> put(const std::string& content);

  util::Status put_with_digest(const digest::Digest& digest,
                               const std::string& content);

  util::Result<std::string> get(const digest::Digest& digest) const;
  bool contains(const digest::Digest& digest) const;
  util::Result<std::uint64_t> stat(const digest::Digest& digest) const;

  /// Remove a blob (no reference counting; callers own GC policy).
  util::Status remove(const digest::Digest& digest);

  /// Number of blobs and total bytes on disk (walks the tree).
  struct Usage {
    std::uint64_t blobs = 0;
    std::uint64_t bytes = 0;
  };
  util::Result<Usage> usage() const;

  /// Enumerate every stored digest (walks the tree).
  util::Status for_each_digest(
      const std::function<void(const digest::Digest&, std::uint64_t size)>&
          fn) const;

  const std::filesystem::path& root() const noexcept { return root_; }

 private:
  explicit DiskStore(std::filesystem::path root) : root_(std::move(root)) {}
  std::filesystem::path path_for(const digest::Digest& digest) const;

  std::filesystem::path root_;
};

}  // namespace dockmine::blob
