// dockmine — command-line front end.
//
//   dockmine analyze  [--repos N] [--seed S] [--cross]   dataset statistics
//   dockmine dedup    [--repos N] [--seed S]             §V dedup report
//   dockmine serve    [--repos N] [--port P] [--state-dir D]
//                     long-lived query/ingest daemon (DESIGN.md §13)
//   dockmine query    SELECTOR --port P                  ask a serve daemon
//   dockmine watch    --port P [--jsonl] [--once]        live daemon monitor
//   dockmine evolve   [--epochs K] [--verify]            temporal epochs +
//                     incremental delta analysis vs batch oracle
//   dockmine serve-registry [--repos N] [--port P]       HTTP registry
//   dockmine crawl    --port P                           crawl a registry
//   dockmine pull     --port P [--workers W] [--token T] mirror a registry
//   dockmine export   [--repos N] --out DIR [--light]    blobs to disk store
//   dockmine metrics  [--repos N] [--format F]           instrumented run
//                     [--shards N] [--spill-mb M] [--spill-dir PATH]
//                     [--export-shards DIR] [--nodes K] [--node I]
//                     [--trace-out F] [--trace-cap N]
//                     [--heartbeat-out F] [--heartbeat-ms N]
//   dockmine merge-shards DIR [DIR ...]                  fold shard sets
//   dockmine merge-obs FILE [FILE ...]                   fold node metrics
//   dockmine coordinate --leases K --spawn-workers W ... distributed run
//   dockmine worker --connect PORT --scratch DIR ...     one worker process
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <fstream>
#include <iostream>
#include <unordered_map>

#include "dockmine/blob/disk_store.h"
#include "dockmine/core/coordinator.h"
#include "dockmine/core/dataset.h"
#include "dockmine/core/lease.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/core/report.h"
#include "dockmine/core/serve.h"
#include "dockmine/core/watch.h"
#include "dockmine/core/worker.h"
#include "dockmine/crawler/crawler.h"
#include "dockmine/obs/critical_path.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/heartbeat.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/trace_export.h"
#include "dockmine/dedup/by_type.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/registry/gc.h"
#include "dockmine/registry/http_gateway.h"
#include "dockmine/shard/merger.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/temporal/delta_analyzer.h"
#include "dockmine/temporal/epoch_model.h"
#include "dockmine/temporal/trend.h"
#include "dockmine/util/bytes.h"
#include "dockmine/util/stopwatch.h"
#include "flags.h"

namespace dockmine::tools {
namespace {

synth::Scale scale_from(const Flags& flags) {
  synth::Scale scale;
  scale.repositories = flags.u64("repos", 1000);
  scale.seed = flags.u64("seed", 20170530);
  return scale;
}

synth::Calibration calibration_from(const Flags& flags) {
  return flags.flag("light") ? synth::Calibration::light()
                             : synth::Calibration::paper();
}

int cmd_analyze(const Flags& flags) {
  synth::HubModel hub(calibration_from(flags), scale_from(flags));
  core::DatasetOptions options;
  options.cross_dup = flags.flag("cross");
  options.workers = flags.u64("workers", 0);
  const auto stats = core::DatasetStats::compute(hub, options);

  std::cout << "snapshot: " << hub.repositories().size() << " repos, "
            << stats.image_count << " images, " << stats.unique_layer_count
            << " unique layers, " << util::format_count(stats.total_files)
            << " files (" << util::format_bytes(stats.total_fls_bytes)
            << " uncompressed, " << util::format_bytes(stats.total_cls_bytes)
            << " compressed) in " << stats.compute_seconds << "s\n\n";
  core::print_cdf(std::cout, "compressed layer size", stats.layer_cls,
                  core::fmt_bytes);
  core::print_cdf(std::cout, "files per layer", stats.layer_files,
                  core::fmt_count);
  core::print_cdf(std::cout, "layers per image", stats.image_layers,
                  core::fmt_count);
  core::print_cdf(std::cout, "pulls per repository", stats.repo_pulls,
                  core::fmt_count);
  if (options.cross_dup) {
    core::print_cdf(std::cout, "cross-layer duplicate fraction",
                    stats.cross_layer_dup,
                    [](double v) { return core::fmt_pct(v); });
  }
  return 0;
}

int cmd_dedup(const Flags& flags) {
  synth::HubModel hub(calibration_from(flags), scale_from(flags));
  const auto stats = core::DatasetStats::compute(hub, {});
  const auto totals = stats.file_index->totals();
  const dedup::TypeBreakdown breakdown(*stats.file_index);

  std::cout << "files: " << util::format_count(totals.total_files) << " ("
            << util::format_bytes(totals.total_bytes) << ")\n"
            << "unique: " << util::format_count(totals.unique_files) << " ("
            << util::format_bytes(totals.unique_bytes) << ", "
            << util::format_percent(totals.unique_file_fraction()) << ")\n"
            << "dedup: " << core::fmt_ratio(totals.count_ratio()) << " count, "
            << core::fmt_ratio(totals.capacity_ratio()) << " capacity\n"
            << "layer sharing: " << core::fmt_ratio(stats.sharing.sharing_ratio())
            << "\n\nby group (count% / capacity% / dedup%):\n";
  for (std::size_t g = 0; g < filetype::kGroupCount; ++g) {
    const auto group = static_cast<filetype::Group>(g);
    std::printf("  %-5s %6s  %6s  %6s\n",
                std::string(filetype::to_string(group)).c_str(),
                core::fmt_pct(breakdown.count_share(group)).c_str(),
                core::fmt_pct(breakdown.capacity_share(group)).c_str(),
                core::fmt_pct(breakdown.by_group(group).capacity_removed()).c_str());
  }
  return 0;
}

std::atomic<bool> g_interrupted{false};

int cmd_serve_registry(const Flags& flags) {
  synth::Scale scale = scale_from(flags);
  if (flags.str("repos").empty()) scale.repositories = 200;
  synth::HubModel hub(calibration_from(flags), scale);
  registry::Service service;
  synth::Materializer materializer(hub, static_cast<int>(flags.u64("gzip", 1)));
  auto pushed = materializer.populate(service);
  if (!pushed.ok()) {
    std::cerr << pushed.error().to_string() << "\n";
    return 1;
  }
  registry::SearchIndex search(service);
  registry::HttpGateway gateway(service, &search);
  auto server = gateway.serve(static_cast<std::uint16_t>(flags.u64("port", 0)),
                              flags.u64("workers", 4));
  if (!server.ok()) {
    std::cerr << server.error().to_string() << "\n";
    return 1;
  }
  std::cout << "serving " << scale.repositories
            << " repositories on 127.0.0.1:" << server.value()->port()
            << " — Ctrl-C to stop\n";
  std::signal(SIGINT, [](int) { g_interrupted.store(true); });
  std::signal(SIGTERM, [](int) { g_interrupted.store(true); });
  const std::uint64_t max_requests = flags.u64("max-requests", 0);
  while (!g_interrupted.load()) {
    if (max_requests != 0 &&
        server.value()->requests_served() >= max_requests) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "served " << server.value()->requests_served()
            << " requests\n";
  server.value()->stop();
  return 0;
}

int cmd_crawl(const Flags& flags) {
  const auto port = static_cast<std::uint16_t>(flags.u64("port", 0));
  if (port == 0) {
    std::cerr << "crawl requires --port\n";
    return 2;
  }
  registry::RemoteRegistry remote(port, flags.str("token"));
  crawler::Crawler crawler(remote, flags.u64("page-size", 100));
  const auto result = crawler.crawl_all();
  std::cout << result.repositories.size() << " repositories ("
            << result.raw_hits << " raw hits, " << result.duplicates_removed
            << " duplicates, " << result.pages_fetched << " pages";
  if (result.pages_retried != 0) {
    std::cout << ", " << result.pages_retried << " retried";
  }
  std::cout << ")\n";
  if (flags.flag("list")) {
    for (const auto& name : result.repositories) std::cout << name << "\n";
  }
  if (result.pages_failed != 0) {
    std::cerr << "crawl truncated: " << result.pages_failed
              << " page(s) unreachable\n";
    return 1;
  }
  return 0;
}

int cmd_pull(const Flags& flags) {
  const auto port = static_cast<std::uint16_t>(flags.u64("port", 0));
  if (port == 0) {
    std::cerr << "pull requires --port\n";
    return 2;
  }
  registry::RemoteRegistry remote(port, flags.str("token"));
  crawler::Crawler crawler(remote);
  const auto crawl = crawler.crawl_all();

  downloader::Options options;
  options.workers = flags.u64("workers", 4);
  options.authenticated = !flags.str("token").empty();
  downloader::Downloader downloader(remote, options);
  util::Stopwatch clock;
  const auto stats = downloader.run(crawl.repositories, nullptr);
  std::cout << stats.succeeded << "/" << stats.attempted << " images, "
            << util::format_bytes(stats.bytes_downloaded) << " in "
            << clock.seconds() << "s (" << stats.layers_fetched
            << " layer transfers, " << stats.layers_deduped
            << " deduped; " << stats.failed_auth << " auth, "
            << stats.failed_no_tag << " no-latest";
  if (stats.failed_digest != 0) std::cout << ", " << stats.failed_digest << " digest";
  const std::uint64_t other = stats.failed_missing + stats.failed_other;
  if (other != 0) std::cout << ", " << other << " other";
  std::cout << ")\n";
  return 0;
}

int cmd_export(const Flags& flags) {
  const std::string out = flags.str("out");
  if (out.empty()) {
    std::cerr << "export requires --out DIR\n";
    return 2;
  }
  synth::Scale scale = scale_from(flags);
  if (flags.str("repos").empty()) scale.repositories = 100;
  synth::HubModel hub(calibration_from(flags), scale);
  auto store = blob::DiskStore::open(out);
  if (!store.ok()) {
    std::cerr << store.error().to_string() << "\n";
    return 1;
  }
  const synth::Materializer materializer(
      hub, static_cast<int>(flags.u64("gzip", 1)));
  std::uint64_t layers = 0;
  for (synth::LayerId id : hub.unique_layers()) {
    auto blob_bytes = materializer.layer_blob(hub.layer_spec(id));
    if (!blob_bytes.ok()) {
      std::cerr << blob_bytes.error().to_string() << "\n";
      return 1;
    }
    if (auto put = store.value().put(blob_bytes.value()); !put.ok()) {
      std::cerr << put.error().to_string() << "\n";
      return 1;
    }
    ++layers;
  }
  auto usage = store.value().usage();
  std::cout << "exported " << layers << " layer blobs ("
            << util::format_bytes(usage.ok() ? usage.value().bytes : 0)
            << ") to " << out << "\n";
  return 0;
}

int cmd_report(const Flags& flags) {
  synth::HubModel hub(calibration_from(flags), scale_from(flags));
  core::DatasetOptions options;
  options.file_dedup = true;
  options.cross_dup = flags.flag("cross");
  const auto stats = core::DatasetStats::compute(hub, options);
  const auto totals = stats.file_index->totals();
  const dedup::TypeBreakdown breakdown(*stats.file_index);
  const auto refs = stats.sharing.reference_count_cdf();

  std::cout << "snapshot: " << hub.repositories().size() << " repos, "
            << stats.image_count << " images, " << stats.unique_layer_count
            << " layers, " << util::format_count(stats.total_files)
            << " files\n";

  core::FigureTable layers("Layers", "paper Figs. 3-7");
  layers
      .row("CLS median / p90", "<4 MB / 63 MB",
           core::fmt_bytes(stats.layer_cls.median()) + " / " +
               core::fmt_bytes(stats.layer_cls.p90()))
      .row("FLS median / p90", "<4 MB / 177 MB",
           core::fmt_bytes(stats.layer_fls.median()) + " / " +
               core::fmt_bytes(stats.layer_fls.p90()))
      .row("compression ratio p50 / p90", "2.6 / 4",
           core::fmt_ratio(stats.layer_ratio.median()) + " / " +
               core::fmt_ratio(stats.layer_ratio.p90()))
      .row("files p50 / p90 / empty / single", "30 / 7,410 / 7% / 27%",
           core::fmt_count(stats.layer_files.median()) + " / " +
               core::fmt_count(stats.layer_files.p90()) + " / " +
               core::fmt_pct(stats.layer_files.fraction_equal(0)) + " / " +
               core::fmt_pct(stats.layer_files.fraction_equal(1)))
      .row("dirs p50 / p90", "11 / 826",
           core::fmt_count(stats.layer_dirs.median()) + " / " +
               core::fmt_count(stats.layer_dirs.p90()))
      .row("depth p50 / p90", "<4 / <10",
           core::fmt_count(stats.layer_depth.median()) + " / " +
               core::fmt_count(stats.layer_depth.p90()));
  layers.print(std::cout);

  core::FigureTable images("Images", "paper Figs. 8-12");
  images
      .row("pulls p50 / p90", "40 / 333",
           core::fmt_count(stats.repo_pulls.median()) + " / " +
               core::fmt_count(stats.repo_pulls.p90()))
      .row("CIS / FIS median", "17 MB / 94 MB",
           core::fmt_bytes(stats.image_cis.median()) + " / " +
               core::fmt_bytes(stats.image_fis.median()))
      .row("layers p50 / p90", "8 / 18",
           core::fmt_count(stats.image_layers.median()) + " / " +
               core::fmt_count(stats.image_layers.p90()))
      .row("files / dirs median", "1,090 / 296",
           core::fmt_count(stats.image_files.median()) + " / " +
               core::fmt_count(stats.image_dirs.median()));
  images.print(std::cout);

  core::FigureTable dedup_table("Dedup", "paper Figs. 23-27 (scale-dep.)");
  dedup_table
      .row("layer refcount =1 / =2", "90% / 5%",
           core::fmt_pct(refs.fraction_equal(1)) + " / " +
               core::fmt_pct(refs.fraction_equal(2)))
      .row("layer sharing", "1.8x",
           core::fmt_ratio(stats.sharing.sharing_ratio()))
      .row("unique files", "3.2% @5.28G files",
           core::fmt_pct(totals.unique_file_fraction()))
      .row("dedup count / capacity", "31.5x / 6.9x @5.28G",
           core::fmt_ratio(totals.count_ratio(), 1) + " / " +
               core::fmt_ratio(totals.capacity_ratio(), 1))
      .row("overall capacity removed", "85.69% @5.28G",
           core::fmt_pct(breakdown.overall().capacity_removed()));
  dedup_table.print(std::cout);
  std::cout << "\n(run the bench binaries for the per-figure tables and"
               " histograms)\n";
  return 0;
}

int cmd_metrics(const Flags& flags) {
  const std::string format = flags.str("format").empty()
                                 ? std::string("table")
                                 : flags.str("format");
  if (format != "table" && format != "json" && format != "prom") {
    std::cerr << "metrics: --format must be table, json, or prom\n";
    return 2;
  }

  core::PipelineOptions options;
  options.scale = scale_from(flags);
  if (flags.str("repos").empty()) options.scale.repositories = 100;
  // An instrumented demo run wants to finish quickly; `--paper` opts into
  // the full calibration.
  options.calibration = flags.flag("paper") ? synth::Calibration::paper()
                                            : synth::Calibration::light();
  options.download_workers = flags.u64("workers", 4);
  options.analyze_workers = flags.u64("workers", 4);

  const std::string mode = flags.str("mode").empty() ? std::string("staged")
                                                     : flags.str("mode");
  if (mode == "serial") {
    options.mode = core::ExecutionMode::kSerial;
  } else if (mode == "staged") {
    options.mode = core::ExecutionMode::kStaged;
  } else if (mode == "streamed") {
    options.mode = core::ExecutionMode::kStreamed;
  } else {
    std::cerr << "metrics: --mode must be serial, staged, or streamed\n";
    return 2;
  }
  options.queue_depth = flags.u64("depth", 16);

  options.shard.shards = static_cast<std::uint32_t>(flags.u64("shards", 0));
  options.shard.spill_threshold_bytes = flags.u64("spill-mb", 64) << 20;
  options.shard.spill_dir = flags.str("spill-dir");
  options.shard_export_dir = flags.str("export-shards");
  options.node_count = static_cast<std::uint32_t>(flags.u64("nodes", 1));
  options.node_index = static_cast<std::uint32_t>(flags.u64("node", 0));
  if (options.shard.shards == 0 &&
      (options.node_count > 1 || !options.shard.spill_dir.empty() ||
       !options.shard_export_dir.empty())) {
    std::cerr << "metrics: --spill-dir/--export-shards/--nodes require"
                 " --shards N\n";
    return 2;
  }
  if (options.node_index >= options.node_count) {
    std::cerr << "metrics: --node must be < --nodes\n";
    return 2;
  }

  const std::string trace_out = flags.str("trace-out");
  const std::string heartbeat_out = flags.str("heartbeat-out");

  obs::set_enabled(true);
  // A node split (--nodes K --node I) is one node of a simulated cluster:
  // stamp the node id so the export folds cleanly under `merge-obs`.
  if (options.node_count > 1) obs::set_node_id(options.node_index);
  if (!trace_out.empty()) {
    const std::uint64_t cap = flags.u64("trace-cap", 0);
    if (cap != 0) obs::TraceJournal::global().set_capacity(cap);
    obs::set_journal_enabled(true);
  }
  if (!heartbeat_out.empty()) {
    obs::HeartbeatOptions hb;
    hb.interval_ms = flags.u64("heartbeat-ms", 1000);
    hb.path = heartbeat_out;
    if (!obs::start_heartbeat(hb)) {
      std::cerr << "metrics: cannot start heartbeat at " << heartbeat_out
                << "\n";
      return 1;
    }
  }
  auto result = core::run_end_to_end(options);
  obs::stop_heartbeat();
  obs::set_enabled(false);
  if (!result.ok()) {
    obs::set_journal_enabled(false);
    std::cerr << result.error().to_string() << "\n";
    return 1;
  }

  obs::CriticalPathReport crit;
  if (!trace_out.empty()) {
    const json::Value trace = obs::trace_to_json();
    crit = obs::critical_path(obs::TraceJournal::global().snapshot());
    obs::set_journal_enabled(false);
    std::ofstream file(trace_out, std::ios::binary | std::ios::trunc);
    if (!file.is_open() || !(file << trace.dump())) {
      std::cerr << "metrics: cannot write " << trace_out << "\n";
      return 1;
    }
  }

  const obs::MetricsReport report = obs::collect();
  if (format == "json") {
    std::cout << obs::to_json(report).dump() << "\n";
  } else if (format == "prom") {
    std::cout << obs::to_prometheus(report);
  } else {
    std::cout << "metrics for an end-to-end " << mode << " run over "
              << options.scale.repositories << " repositories\n";
    core::print_metrics(std::cout, report);
    if (!trace_out.empty() && crit.root_wall_ms > 0.0) {
      std::cout << "critical path of '" << crit.root_name << "' ("
                << crit.root_wall_ms << " ms wall):\n";
      std::size_t shown = 0;
      for (const auto& entry : crit.entries) {
        if (++shown > 10) break;  // top-k
        std::printf("  %-24s %10.3f ms  (%5.1f%%, %llu segments)\n",
                    entry.name.c_str(), entry.total_ms,
                    100.0 * entry.total_ms / crit.root_wall_ms,
                    static_cast<unsigned long long>(entry.segments));
      }
      std::printf("  %-24s %10.3f ms  (%5.1f%%)\n", "(root self)",
                  crit.root_self_ms,
                  100.0 * crit.root_self_ms / crit.root_wall_ms);
      std::cout << "trace written to " << trace_out << "\n";
    }
    if (options.mode == core::ExecutionMode::kStreamed) {
      const auto& stream = result.value().stream;
      std::cout << "stream: " << stream.layers_analyzed << " layers through a "
                << stream.queue_capacity << "-deep queue (peak "
                << stream.queue_peak << ", " << stream.producer_stalls
                << " producer stalls)\n";
    }
    const auto& sharded = result.value().shard_summary;
    if (sharded.enabled) {
      std::cout << "shards: " << sharded.shards << " shards, "
                << util::format_count(sharded.observations)
                << " observations -> "
                << util::format_count(sharded.distinct_contents)
                << " distinct contents, " << sharded.spills << " spills ("
                << util::format_bytes(sharded.spilled_bytes)
                << "), peak resident "
                << util::format_bytes(sharded.peak_resident_bytes) << ", "
                << sharded.runs_merged << " runs merged";
      if (sharded.metadata_conflicts != 0) {
        std::cout << ", " << sharded.metadata_conflicts << " conflicts";
      }
      if (!sharded.export_manifest.empty()) {
        std::cout << "\nexported shard set: " << sharded.export_manifest;
      }
      std::cout << "\n";
    }
  }
  return 0;
}

int cmd_merge_shards(const Flags& flags) {
  if (flags.positional().empty()) {
    std::cerr << "merge-shards requires one or more shard-set directories\n";
    return 2;
  }
  shard::ShardMerger merger;
  for (const std::string& dir : flags.positional()) {
    if (auto added = merger.add_shard_set(dir); !added.ok()) {
      std::cerr << added.error().to_string() << "\n";
      return 1;
    }
  }
  auto merged = merger.merge_aggregates();
  if (!merged.ok()) {
    std::cerr << merged.error().to_string() << "\n";
    return 1;
  }
  const auto& aggregates = merged.value();
  const auto& totals = aggregates.totals;
  std::cout << "merged " << merger.stats().runs << " runs from "
            << flags.positional().size() << " shard set(s), "
            << util::format_count(merger.stats().entries_read)
            << " run entries\n"
            << "files: " << util::format_count(totals.total_files) << " ("
            << util::format_bytes(totals.total_bytes) << ")\n"
            << "unique: " << util::format_count(totals.unique_files) << " ("
            << util::format_bytes(totals.unique_bytes) << ", "
            << util::format_percent(totals.unique_file_fraction()) << ")\n"
            << "dedup: " << core::fmt_ratio(totals.count_ratio())
            << " count, " << core::fmt_ratio(totals.capacity_ratio())
            << " capacity\n"
            << "max repeat: " << util::format_count(aggregates.max_repeat.count)
            << " copies of a " << util::format_bytes(aggregates.max_repeat.size)
            << " file\n";
  if (aggregates.metadata_conflicts != 0) {
    std::cout << "metadata conflicts: " << aggregates.metadata_conflicts
              << "\n";
  }
  std::cout << "\nby group (count% / capacity% / dedup%):\n";
  for (std::size_t g = 0; g < filetype::kGroupCount; ++g) {
    const auto group = static_cast<filetype::Group>(g);
    std::printf("  %-5s %6s  %6s  %6s\n",
                std::string(filetype::to_string(group)).c_str(),
                core::fmt_pct(aggregates.by_type.count_share(group)).c_str(),
                core::fmt_pct(aggregates.by_type.capacity_share(group)).c_str(),
                core::fmt_pct(
                    aggregates.by_type.by_group(group).capacity_removed())
                    .c_str());
  }
  return 0;
}

int cmd_merge_obs(const Flags& flags) {
  if (flags.positional().empty()) {
    std::cerr << "merge-obs requires one or more obs-node-*.json exports\n";
    return 2;
  }
  const std::string format = flags.str("format").empty()
                                 ? std::string("table")
                                 : flags.str("format");
  if (format != "table" && format != "json" && format != "prom") {
    std::cerr << "merge-obs: --format must be table, json, or prom\n";
    return 2;
  }
  auto merged = obs::merge_obs_exports(flags.positional());
  if (!merged.ok()) {
    std::cerr << merged.error().to_string() << "\n";
    return 1;
  }
  const obs::ObsMergeResult& result = merged.value();
  if (format == "json") {
    json::Value nodes = json::Value::array();
    for (const obs::ObsNodeSummary& node : result.nodes) {
      json::Value row = json::Value::object();
      row.set("source", node.source);
      row.set("node", std::uint64_t{node.node});
      row.set("pipeline_wall_ms", node.pipeline_wall_ms);
      row.set("straggler_delta_ms", node.straggler_delta_ms);
      nodes.push_back(std::move(row));
    }
    json::Value doc = json::Value::object();
    doc.set("merged", obs::to_json(result.merged));
    doc.set("nodes", std::move(nodes));
    std::cout << doc.dump() << "\n";
  } else if (format == "prom") {
    std::cout << obs::to_prometheus(result.merged);
  } else {
    std::cout << "merged metrics from " << result.nodes.size()
              << " node export(s)\n";
    core::print_metrics(std::cout, result.merged);
    std::cout << "per-node pipeline wall (straggler delta vs fastest):\n";
    for (const obs::ObsNodeSummary& node : result.nodes) {
      std::printf("  node %-3u %12.3f ms  (+%.3f ms)  %s\n", node.node,
                  node.pipeline_wall_ms, node.straggler_delta_ms,
                  node.source.c_str());
    }
  }
  return 0;
}

int cmd_gc(const Flags& flags) {
  const std::string dir = flags.str("dir");
  if (dir.empty()) {
    std::cerr << "gc requires --dir STORE (and --live manifest.json ...)\n";
    return 2;
  }
  auto store = blob::DiskStore::open(dir);
  if (!store.ok()) {
    std::cerr << store.error().to_string() << "\n";
    return 1;
  }
  std::vector<std::string> live;
  for (const std::string& path : flags.positional()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read live manifest " << path << "\n";
      return 1;
    }
    live.emplace_back((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  }
  auto report = registry::collect_garbage(live, store.value());
  if (!report.ok()) {
    std::cerr << report.error().to_string() << "\n";
    return 1;
  }
  std::cout << "kept " << report.value().live_blobs << " blobs ("
            << util::format_bytes(report.value().live_bytes) << "), swept "
            << report.value().swept_blobs << " ("
            << util::format_bytes(report.value().swept_bytes) << ")\n";
  return 0;
}

// The temporal stack shared by `serve --temporal` and `evolve`: one
// evolving registry plus the incremental analyzer, advanced one epoch per
// call. Everything is seeded, so replaying advance_to(0..K) after a restart
// reproduces the exact resident state.
struct TemporalStack {
  synth::HubModel hub;
  temporal::EpochModel model;
  registry::Service service;
  temporal::EvolvingRegistry evolving;
  temporal::DeltaAnalyzer analyzer;

  TemporalStack(const synth::Calibration& calibration,
                const synth::Scale& scale, int gzip_level)
      : hub(calibration, scale), model(hub), evolving(model, gzip_level) {}

  util::Result<temporal::EpochDelta> advance_to(std::uint32_t epoch) {
    if (epoch == 0) {
      auto pushed = evolving.initialize(service);
      if (!pushed.ok()) return std::move(pushed).error();
      // Epoch 0 is the initial ingest: the churn set is every repository,
      // exactly the universe the batch crawler would discover.
      std::vector<std::string> all;
      all.reserve(hub.repositories().size());
      for (const auto& repo : hub.repositories()) all.push_back(repo.name);
      return analyzer.apply_epoch(service, 0, all);
    }
    auto pushed = evolving.advance(service);
    if (!pushed.ok()) return std::move(pushed).error();
    return analyzer.apply_epoch(service, epoch, pushed.value().repushed);
  }
};

int cmd_evolve(const Flags& flags) {
  synth::Scale scale = scale_from(flags);
  if (flags.str("repos").empty()) scale.repositories = 120;
  const synth::Calibration calibration = flags.flag("paper")
                                             ? synth::Calibration::paper()
                                             : synth::Calibration::light();
  const int gzip_level = static_cast<int>(flags.u64("gzip", 1));
  const auto epochs = static_cast<std::uint32_t>(flags.u64("epochs", 4));
  const std::string mode = flags.str("mode", "staged");
  core::ExecutionMode exec_mode;
  if (mode == "serial") {
    exec_mode = core::ExecutionMode::kSerial;
  } else if (mode == "staged") {
    exec_mode = core::ExecutionMode::kStaged;
  } else if (mode == "streamed") {
    exec_mode = core::ExecutionMode::kStreamed;
  } else {
    std::cerr << "evolve: --mode must be serial, staged, or streamed\n";
    return 2;
  }

  TemporalStack stack(calibration, scale, gzip_level);
  temporal::TrendReport trend;
  for (std::uint32_t epoch = 0; epoch <= epochs; ++epoch) {
    auto delta = stack.advance_to(epoch);
    if (!delta.ok()) {
      std::cerr << "evolve: " << delta.error().to_string() << "\n";
      return 1;
    }
    if (auto observed = trend.observe(stack.analyzer); !observed.ok()) {
      std::cerr << "evolve: " << observed.error().to_string() << "\n";
      return 1;
    }
    const temporal::EpochDelta& d = delta.value();
    std::cout << "epoch " << epoch << ": " << d.repos_delivered << "/"
              << d.repos_churned << " repos, " << d.layers_changed
              << " layers analyzed, " << d.layers_reused << " reused, "
              << d.layers_removed << " retired ("
              << util::format_bytes(d.bytes_fetched) << " fetched, "
              << d.wall_ms << " ms)\n";

    if (flags.flag("verify")) {
      // Batch oracle: a fresh registry built from scratch at this epoch,
      // analyzed by the ordinary pipeline — the incremental report must be
      // byte-identical.
      registry::Service oracle_service;
      auto built = temporal::build_registry_at_epoch(stack.model, epoch,
                                                     gzip_level,
                                                     oracle_service);
      if (!built.ok()) {
        std::cerr << "evolve: " << built.error().to_string() << "\n";
        return 1;
      }
      core::PipelineOptions options;
      options.scale = scale;
      options.calibration = calibration;
      options.gzip_level = gzip_level;
      options.mode = exec_mode;
      options.download_workers = flags.u64("workers", 4);
      options.analyze_workers = flags.u64("workers", 4);
      options.external_service = &oracle_service;
      auto batch = core::run_end_to_end(options);
      if (!batch.ok()) {
        std::cerr << "evolve: oracle run failed: "
                  << batch.error().to_string() << "\n";
        return 1;
      }
      auto incremental = stack.analyzer.report();
      if (!incremental.ok()) {
        std::cerr << "evolve: " << incremental.error().to_string() << "\n";
        return 1;
      }
      if (incremental.value().dump() !=
          core::analysis_report_json(batch.value()).dump()) {
        std::cerr << "evolve: VERIFY FAILED — incremental epoch-" << epoch
                  << " report differs from the from-scratch batch report\n";
        return 1;
      }
      std::cout << "epoch " << epoch
                << ": verified — incremental report is byte-identical to"
                   " the batch oracle\n";
    }
  }

  const std::string trend_out = flags.str("trend-out");
  if (!trend_out.empty()) {
    std::ofstream file(trend_out, std::ios::binary | std::ios::trunc);
    if (!file.is_open() || !(file << trend.to_json().dump_pretty() << "\n")) {
      std::cerr << "evolve: cannot write " << trend_out << "\n";
      return 1;
    }
    std::cout << "trend series written to " << trend_out << "\n";
  }
  const auto totals = stack.analyzer.contents().totals();
  std::cout << "final: epoch " << stack.analyzer.epoch() << ", "
            << stack.analyzer.resident_images() << " images, "
            << stack.analyzer.resident_layers() << " layers, dedup "
            << core::fmt_ratio(totals.count_ratio()) << " count / "
            << core::fmt_ratio(totals.capacity_ratio()) << " capacity\n";
  return 0;
}

core::JobSpec job_spec_from(const Flags& flags) {
  core::JobSpec spec;
  spec.repositories = flags.u64("repos", 120);
  spec.seed = flags.u64("seed", 20170530);
  spec.light_calibration = !flags.flag("paper");
  spec.gzip_level = static_cast<int>(flags.u64("gzip", 1));
  spec.download_workers = flags.u64("workers", 4);
  spec.analyze_workers = flags.u64("workers", 2);
  spec.shards = static_cast<std::uint32_t>(flags.u64("shards", 4));
  const std::string mode = flags.str("mode", "staged");
  spec.mode = mode == "serial"     ? core::ExecutionMode::kSerial
              : mode == "streamed" ? core::ExecutionMode::kStreamed
                                   : core::ExecutionMode::kStaged;
  return spec;
}

int cmd_serve(const Flags& flags) {
  core::serve::ServeOptions options;
  options.job = job_spec_from(flags);
  if (flags.str("repos").empty()) options.job.repositories = 40;
  options.state_dir = flags.str("state-dir", "dockmine-serve-state");
  options.port = static_cast<std::uint16_t>(flags.u64("port", 0));
  options.io_timeout_ms =
      static_cast<std::uint32_t>(flags.u64("io-timeout-ms", 200));
  options.slowloris_ms = flags.u64("slowloris-ms", 10000);

  if (flags.flag("telemetry")) {
    // Continuous telemetry implies the obs switches: the sampler scrapes
    // the registry, and trace-tail serves the journal.
    obs::set_enabled(true);
    obs::set_journal_enabled(true);
    options.telemetry.enabled = true;
    options.telemetry.sample_interval_ms = flags.u64("sample-ms", 1000);
    const std::string threshold = flags.str("slowlog-threshold-ms");
    if (!threshold.empty()) {
      options.telemetry.slowlog_threshold_ms =
          std::strtod(threshold.c_str(), nullptr);
    }
    options.telemetry.alert_log_path = flags.str("alert-log");
  }

  if (flags.flag("temporal")) {
    // Temporal mode: the daemon serves an evolving registry; ingest-epoch
    // advances it one epoch. The stack outlives the daemon via the shared
    // capture.
    synth::Scale scale;
    scale.repositories = options.job.repositories;
    scale.seed = options.job.seed;
    auto stack = std::make_shared<TemporalStack>(
        options.job.light_calibration ? synth::Calibration::light()
                                      : synth::Calibration::paper(),
        scale, options.job.gzip_level);
    options.temporal_advance =
        [stack](std::uint32_t epoch) -> util::Result<core::PipelineResult> {
      auto delta = stack->advance_to(epoch);
      if (!delta.ok()) return std::move(delta).error();
      return stack->analyzer.result();
    };
  }

  core::serve::ServeDaemon daemon(std::move(options));
  if (auto started = daemon.start(); !started.ok()) {
    std::cerr << "serve: " << started.error().to_string() << "\n";
    return 1;
  }
  const auto snapshot = daemon.snapshot();
  const std::string report_out = flags.str("report-out");
  if (!report_out.empty()) {
    std::ofstream file(report_out, std::ios::binary | std::ios::trunc);
    // Trailing newline so the file is byte-identical to `dockmine query
    // report` output — the serve-smoke CI job cmp's the two.
    if (!file.is_open() || !(file << snapshot->report.dump() << "\n")) {
      std::cerr << "serve: cannot write " << report_out << "\n";
      return 1;
    }
  }
  std::cout << "serving 127.0.0.1:" << daemon.port() << " epoch "
            << snapshot->epoch << " (" << snapshot->images.size()
            << " images) — Ctrl-C or a shutdown request to stop" << std::endl;
  std::signal(SIGINT, [](int) { g_interrupted.store(true); });
  std::signal(SIGTERM, [](int) { g_interrupted.store(true); });
  while (!g_interrupted.load() && !daemon.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  daemon.stop();
  std::cout << "serve: stopped at epoch " << daemon.snapshot()->epoch << "\n";
  return 0;
}

int cmd_query(const Flags& flags) {
  const auto port = static_cast<std::uint16_t>(flags.u64("port", 0));
  if (port == 0) {
    std::cerr << "query requires --port\n";
    return 2;
  }
  const std::string selector = flags.positional().empty()
                                   ? flags.str("q", "report")
                                   : flags.positional().front();
  core::serve::Request request;
  request.id = flags.u64("id", 1);
  if (selector == "ingest") {
    request.kind = core::serve::RequestKind::kIngest;
    request.repositories = flags.u64("repos", 0);
    request.seed = flags.u64("seed", 20170530);
    if (request.repositories == 0) {
      std::cerr << "query ingest requires --repos N\n";
      return 2;
    }
  } else if (selector == "ingest-epoch") {
    request.kind = core::serve::RequestKind::kIngestEpoch;
  } else if (selector == "shutdown") {
    request.kind = core::serve::RequestKind::kShutdown;
  } else {
    request.kind = core::serve::RequestKind::kQuery;
    request.q = selector;
    request.path = flags.str("path");
    request.repository = flags.str("repo");
    request.key = flags.u64("key", 0);
    request.name = flags.str("name");
    request.metric = flags.str("metric", "cis");
    request.n = flags.u64("n", selector == "trace-tail" ? 0 : 10);
    request.prefix = flags.str("prefix");
    request.op = flags.str("op");
    request.range_ms = flags.u64("range-ms", 0);
    request.window_ms = flags.u64("window-ms", 0);
    const std::string quantile = flags.str("quantile");
    if (!quantile.empty()) {
      request.quantile = std::strtod(quantile.c_str(), nullptr);
    }
  }
  // Ingest runs a whole pipeline batch (or temporal epoch) before
  // answering; give it room.
  const std::uint64_t default_timeout =
      selector == "ingest" || selector == "ingest-epoch" ? 600000 : 10000;
  auto client = core::serve::Client::connect(
      port, static_cast<std::uint32_t>(flags.u64("timeout-ms", default_timeout)));
  if (!client.ok()) {
    std::cerr << "query: " << client.error().to_string() << "\n";
    return 1;
  }
  auto response = client.value().call(request);
  if (!response.ok()) {
    std::cerr << "query: " << response.error().to_string() << "\n";
    return 1;
  }
  if (!response.value().ok) {
    std::cerr << "query: server error (epoch " << response.value().epoch
              << "): " << response.value().error << "\n";
    return 1;
  }
  std::cout << response.value().body.dump() << "\n";
  return 0;
}

int cmd_watch(const Flags& flags) {
  core::watch::WatchOptions options;
  options.port = static_cast<std::uint16_t>(flags.u64("port", 0));
  options.jsonl = flags.flag("jsonl");
  options.once = flags.flag("once");
  options.interval_ms = flags.u64("interval-ms", 1000);
  if (options.port == 0) {
    std::cerr << "watch requires --port\n";
    return 2;
  }
  auto result = core::watch::run(options);
  if (!result.ok()) {
    std::cerr << "watch: " << result.error().to_string() << "\n";
    return 1;
  }
  return 0;
}

int cmd_worker(const Flags& flags) {
  core::WorkerOptions options;
  options.port = static_cast<std::uint16_t>(flags.u64("connect", 0));
  options.worker_id = flags.u64("id", 0);
  options.scratch_dir = flags.str("scratch", "dockmine-worker-scratch");
  options.heartbeat_interval_ms = flags.u64("heartbeat-ms", 100);
  options.io_timeout_ms =
      static_cast<std::uint32_t>(flags.u64("io-timeout-ms", 500));
  options.idle_timeout_ms = flags.u64("idle-timeout-ms", 60000);
  options.chaos.die_on_first_lease = flags.flag("chaos-die-after-one");
  options.chaos.hang_on_first_lease = flags.flag("chaos-hang-after-one");
  options.chaos.hang_ms = flags.u64("chaos-hang-ms", 30000);
  if (options.port == 0) {
    std::cerr << "worker requires --connect PORT\n";
    return 2;
  }
  // Heartbeats carry the metric snapshot and each lease ships an obs
  // export; the coordinator's merge-obs view depends on workers observing.
  obs::set_enabled(true);
  auto result = core::run_worker(options);
  if (!result.ok()) {
    std::cerr << "worker: " << result.error().to_string() << "\n";
    return 1;
  }
  const core::WorkerStats& stats = result.value();
  std::cerr << "worker done: " << stats.leases_completed << " lease(s), "
            << stats.leases_failed << " failed, " << stats.heartbeats_sent
            << " heartbeats, " << stats.files_shipped << " files ("
            << util::format_bytes(stats.bytes_shipped) << ")"
            << (stats.shutdown_received ? "" : " [no shutdown frame]")
            << "\n";
  return 0;
}

int cmd_coordinate(const Flags& flags) {
  core::CoordinatorOptions options;
  options.spec = job_spec_from(flags);
  options.leases = static_cast<std::uint32_t>(flags.u64("leases", 3));
  options.work_dir = flags.str("work-dir", "dockmine-coordinate");
  options.port = static_cast<std::uint16_t>(flags.u64("port", 0));
  options.heartbeat_deadline_ms = flags.u64("heartbeat-deadline-ms", 2000);
  options.straggler_factor = flags.flag("no-stragglers") ? 0.0 : 3.0;
  options.duplicate_every_lease = flags.flag("duplicate-every-lease");
  options.max_wall_ms = flags.u64("max-wall-ms", 10 * 60 * 1000);
  options.retry.max_attempts =
      static_cast<int>(flags.u64("max-attempts", 5));
  options.retry.retry_budget = flags.u64("retry-budget", 64);
  options.seed = options.spec.seed;

  obs::set_enabled(true);
  core::Coordinator coordinator(options);
  if (auto bound = coordinator.bind(); !bound.ok()) {
    std::cerr << "coordinate: " << bound.error().to_string() << "\n";
    return 1;
  }
  std::cerr << "coordinate: listening on 127.0.0.1:" << coordinator.port()
            << ", " << options.leases << " lease(s)\n";

  // Spawn local workers: fork + exec this binary's `worker` verb. Forking
  // happens before run() starts any coordinator thread.
  const std::uint64_t spawn = flags.u64("spawn-workers", 0);
  const std::uint64_t kill_index = flags.u64("chaos-kill-worker", spawn);
  const std::uint64_t hang_index = flags.u64("chaos-hang-worker", spawn);
  std::vector<pid_t> children;
  for (std::uint64_t i = 0; i < spawn; ++i) {
    std::vector<std::string> args = {
        "/proc/self/exe",
        "worker",
        "--connect=" + std::to_string(coordinator.port()),
        "--id=" + std::to_string(i + 1),
        "--scratch=" + options.work_dir + "/worker-" + std::to_string(i),
        "--heartbeat-ms=" + flags.str("heartbeat-ms", "100"),
    };
    if (i == kill_index) args.push_back("--chaos-die-after-one");
    if (i == hang_index) args.push_back("--chaos-hang-after-one");
    const pid_t pid = ::fork();
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv("/proc/self/exe", argv.data());
      _exit(127);
    }
    if (pid < 0) {
      std::cerr << "coordinate: fork failed\n";
      return 1;
    }
    children.push_back(pid);
  }
  // A killed or hung worker leaves the pool one short; over-provision so
  // the survivors can still absorb every reassignment.
  auto report = coordinator.run();
  for (const pid_t pid : children) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  if (!report.ok()) {
    std::cerr << "coordinate: " << report.error().to_string() << "\n";
    return 1;
  }
  const core::DistStats& stats = report.value().stats;
  std::cerr << "coordinate: " << stats.leases << " lease(s) done across "
            << stats.workers_connected << " worker(s) in "
            << stats.elapsed_ms / 1000.0 << " s\n"
            << "  heartbeats " << stats.heartbeats_received
            << ", missed deadlines " << stats.missed_deadlines
            << ", disconnects " << stats.worker_disconnects
            << ", reassignments " << stats.reassignments << "\n"
            << "  straggler redispatches " << stats.straggler_redispatches
            << ", duplicate completions " << stats.duplicate_completions
            << " (mismatches " << stats.duplicate_mismatches << ")"
            << ", malformed frames " << stats.malformed_frames << "\n"
            << "  lease failures " << stats.lease_failures << ", received "
            << stats.files_received << " files ("
            << util::format_bytes(stats.bytes_received) << ")\n";
  for (const obs::ObsNodeSummary& node : report.value().node_obs) {
    std::printf("  lease %-3u pipeline %10.3f ms (+%.3f ms straggler)\n",
                node.node, node.pipeline_wall_ms, node.straggler_delta_ms);
  }
  const json::Value merged =
      core::analysis_report_json(report.value().combined);
  if (flags.flag("verify-serial")) {
    // Re-run the identical job as one serial in-process pipeline and demand
    // byte equality with the distributed fold — the CI smoke's oracle.
    const std::string serial_dir = options.work_dir + "/serial";
    auto serial = core::run_end_to_end(
        core::lease_pipeline_options(options.spec, 0, 1, serial_dir));
    if (!serial.ok()) {
      std::cerr << "coordinate: serial verify run failed: "
                << serial.error().to_string() << "\n";
      return 1;
    }
    const json::Value serial_report =
        core::analysis_report_json(serial.value());
    if (serial_report.dump() != merged.dump()) {
      std::cerr << "coordinate: VERIFY FAILED — distributed report differs"
                   " from the serial report\n";
      return 1;
    }
    if (stats.duplicate_mismatches != 0) {
      std::cerr << "coordinate: VERIFY FAILED — duplicate completions did"
                   " not match (idempotency violation)\n";
      return 1;
    }
    std::cerr << "coordinate: verified — distributed report is"
                 " byte-identical to the serial run\n";
  }
  const std::string out = flags.str("out");
  if (!out.empty()) {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    if (!file.is_open() || !(file << merged.dump())) {
      std::cerr << "coordinate: cannot write " << out << "\n";
      return 1;
    }
    std::cerr << "coordinate: report written to " << out << "\n";
  }
  return 0;
}

int usage() {
  std::cerr <<
      "usage: dockmine <command> [flags]\n"
      "  analyze  [--repos N] [--seed S] [--cross] [--workers W] [--light]\n"
      "  report   [--repos N] [--seed S]   paper-vs-measured summary\n"
      "  dedup    [--repos N] [--seed S] [--light]\n"
      "  serve    [--repos N] [--seed S] [--port P] [--state-dir DIR]\n"
      "           [--paper] [--shards N] [--mode serial|staged|streamed]\n"
      "           [--io-timeout-ms N] [--slowloris-ms N] [--report-out F]\n"
      "           [--temporal]   long-lived query/ingest daemon; with\n"
      "           --temporal it serves an evolving registry and accepts\n"
      "           ingest-epoch instead of batch ingest\n"
      "           [--telemetry] [--sample-ms N] [--slowlog-threshold-ms T]\n"
      "           [--alert-log F]   continuous telemetry: background\n"
      "           sampler, SLO alert rules, slow-query journal\n"
      "  query    report|image|layer|content|types|ecdf|status|stats|\n"
      "           metrics|trace-tail|slowlog|top|repos|ingest|\n"
      "           ingest-epoch|shutdown  --port P\n"
      "           [--path A.B] [--repo NAME] [--key K] [--name images.cis]\n"
      "           [--quantile Q] [--metric cis|fis|files|layers] [--n K]\n"
      "           [--prefix P] [--repos N] [--seed S] [--timeout-ms N]\n"
      "           [--op rate|quantile] [--window-ms N] [--range-ms N]\n"
      "           ask a running serve daemon\n"
      "  watch    --port P [--jsonl] [--once] [--interval-ms N]\n"
      "           live daemon monitor: per-interval request rates,\n"
      "           latency quantiles, alert + journal state\n"
      "  evolve   [--repos N] [--seed S] [--epochs K] [--paper] [--gzip L]\n"
      "           [--mode serial|staged|streamed] [--verify]\n"
      "           [--trend-out F]   evolve the registry K epochs with\n"
      "           incremental delta analysis; --verify pins each epoch's\n"
      "           report byte-for-byte against a from-scratch batch run\n"
      "  serve-registry [--repos N] [--port P] [--workers W] [--light]\n"
      "           [--max-requests N]   HTTP registry for crawl/pull\n"
      "  crawl    --port P [--token T] [--page-size K] [--list]\n"
      "  pull     --port P [--token T] [--workers W]\n"
      "  export   --out DIR [--repos N] [--light] [--gzip L]\n"
      "  metrics  [--repos N] [--seed S] [--workers W] [--paper]\n"
      "           [--mode serial|staged|streamed] [--depth N]\n"
      "           [--shards N] [--spill-mb M] [--spill-dir PATH]\n"
      "           [--export-shards DIR] [--nodes K] [--node I]\n"
      "           [--trace-out trace.json] [--trace-cap N]\n"
      "           [--heartbeat-out hb.jsonl] [--heartbeat-ms N]\n"
      "           [--format table|json|prom]   instrumented pipeline run\n"
      "  merge-shards DIR [DIR ...]   fold exported shard sets into the\n"
      "           dedup report (see metrics --export-shards)\n"
      "  merge-obs FILE [FILE ...]   fold per-node obs exports into one\n"
      "           report with straggler deltas [--format table|json|prom]\n"
      "  gc       --dir STORE [live-manifest.json ...]\n"
      "  coordinate [--leases K] [--spawn-workers W] [--work-dir DIR]\n"
      "           [--repos N] [--seed S] [--paper] [--shards N]\n"
      "           [--mode serial|staged|streamed] [--port P]\n"
      "           [--heartbeat-deadline-ms N] [--max-attempts N]\n"
      "           [--chaos-kill-worker I] [--chaos-hang-worker I]\n"
      "           [--duplicate-every-lease] [--verify-serial] [--out F]\n"
      "           distributed run: coordinator + worker processes\n"
      "  worker   --connect PORT [--id N] [--scratch DIR]\n"
      "           [--heartbeat-ms N] [--chaos-die-after-one]\n"
      "           [--chaos-hang-after-one]   one distributed worker\n";
  return 2;
}

}  // namespace
}  // namespace dockmine::tools

int main(int argc, char** argv) {
  using namespace dockmine::tools;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Flags flags = Flags::parse(argc, argv, 2);
  if (command == "analyze") return cmd_analyze(flags);
  if (command == "report") return cmd_report(flags);
  if (command == "dedup") return cmd_dedup(flags);
  if (command == "serve") return cmd_serve(flags);
  if (command == "query") return cmd_query(flags);
  if (command == "watch") return cmd_watch(flags);
  if (command == "evolve") return cmd_evolve(flags);
  if (command == "serve-registry") return cmd_serve_registry(flags);
  if (command == "crawl") return cmd_crawl(flags);
  if (command == "pull") return cmd_pull(flags);
  if (command == "export") return cmd_export(flags);
  if (command == "metrics") return cmd_metrics(flags);
  if (command == "merge-shards") return cmd_merge_shards(flags);
  if (command == "merge-obs") return cmd_merge_obs(flags);
  if (command == "gc") return cmd_gc(flags);
  if (command == "coordinate") return cmd_coordinate(flags);
  if (command == "worker") return cmd_worker(flags);
  return usage();
}
