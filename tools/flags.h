// Tiny declarative flag parser for the dockmine CLI.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace dockmine::tools {

class Flags {
 public:
  /// Parse "--name value" and "--name=value" pairs after the subcommand.
  static Flags parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        flags.positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags.values_[arg] = argv[++i];
      } else {
        flags.values_[arg] = "true";
      }
    }
    return flags;
  }

  std::string str(const std::string& name, std::string fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  std::uint64_t u64(const std::string& name, std::uint64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  bool flag(const std::string& name) const {
    const auto it = values_.find(name);
    return it != values_.end() && it->second != "false";
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dockmine::tools
