#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json artifacts.

Non-gating CI trend step: compares every numeric leaf shared by the old
and new run of each bench file and prints a table of the changes, with
regressions (latency/wall up, qps down) flagged. Always exits 0 — the
output is for the human reading the job log, not for gating merges;
missing old artifacts (first run, expired retention) just shorten the
table.

Usage:
    bench_diff.py --old previous-artifacts/ --new . [--threshold 0.05]
"""

import argparse
import glob
import json
import os
import sys

# Leaves where a bigger number is better; everything else numeric is
# treated as cost (latency, wall time, errors) where bigger is worse.
HIGHER_IS_BETTER = ("qps", "requests", "repositories")


def numeric_leaves(doc, prefix=""):
    """Flatten a parsed bench document to {dotted.path: float}."""
    out = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            out.update(numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(doc, bool):
        pass  # ingest_committed etc. — not a trend metric
    elif isinstance(doc, (int, float)):
        out[prefix.rstrip(".")] = float(doc)
    return out


def is_higher_better(path):
    leaf = path.rsplit(".", 1)[-1]
    return any(leaf.startswith(token) for token in HIGHER_IS_BETTER)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        print(f"  (unreadable {path}: {error})")
        return None


def diff_file(name, old_path, new_path, threshold):
    old_doc, new_doc = load(old_path), load(new_path)
    if old_doc is None or new_doc is None:
        return
    old_leaves, new_leaves = numeric_leaves(old_doc), numeric_leaves(new_doc)
    shared = sorted(set(old_leaves) & set(new_leaves))
    if not shared:
        print(f"{name}: no shared numeric metrics")
        return

    print(f"\n{name}")
    print(f"  {'metric':<44} {'old':>12} {'new':>12} {'delta':>9}")
    regressions = 0
    for path in shared:
        old_value, new_value = old_leaves[path], new_leaves[path]
        if old_value == 0.0:
            rel = 0.0 if new_value == 0.0 else float("inf")
        else:
            rel = (new_value - old_value) / abs(old_value)
        worse = rel < -threshold if is_higher_better(path) else rel > threshold
        flag = "  << regression" if worse else ""
        regressions += worse
        delta = "+inf" if rel == float("inf") else f"{rel:+8.1%}"
        print(f"  {path:<44} {old_value:>12.4g} {new_value:>12.4g} {delta:>9}{flag}")
    if regressions:
        print(f"  {regressions} metric(s) moved past the {threshold:.0%} "
              "threshold (informational — not gating)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--old", required=True,
                        help="directory holding the previous run's BENCH_*.json")
    parser.add_argument("--new", required=True,
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative change that flags a row (default 0.05)")
    args = parser.parse_args()

    new_files = sorted(glob.glob(os.path.join(args.new, "BENCH_*.json")))
    if not new_files:
        print(f"bench_diff: no BENCH_*.json under {args.new}")
        return 0
    compared = 0
    for new_path in new_files:
        name = os.path.basename(new_path)
        old_path = os.path.join(args.old, name)
        if not os.path.exists(old_path):
            # `gh run download` flattens per-artifact dirs one level deep.
            nested = glob.glob(os.path.join(args.old, "*", name))
            if not nested:
                print(f"{name}: no previous artifact — skipped")
                continue
            old_path = nested[0]
        diff_file(name, old_path, new_path, args.threshold)
        compared += 1
    print(f"\nbench_diff: compared {compared}/{len(new_files)} bench file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
