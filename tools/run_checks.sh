#!/usr/bin/env bash
# One-command gate: tier-1 suite, then the concurrency-sensitive suites
# under ThreadSanitizer (including the sharded-dedup suites with a
# pathological spill threshold, driving every run through the spill/merge
# path), then the observability suites with the obs layer compiled out
# (-DDOCKMINE_OBS=OFF) to prove the disabled path builds and records
# nothing.
#
# Usage: tools/run_checks.sh [build-root]     (default: ./build-checks)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_root="${1:-"${repo_root}/build-checks"}"
jobs="$(nproc 2>/dev/null || echo 4)"

configure_and_build() {
  local dir="$1"
  shift
  cmake -B "${dir}" -S "${repo_root}" "$@" >/dev/null
  cmake --build "${dir}" -j "${jobs}"
}

echo "== [1/3] tier-1 suite (default build) =="
configure_and_build "${build_root}/default"
ctest --test-dir "${build_root}/default" -L tier1 --output-on-failure -j "${jobs}"

echo "== [2/3] TSan: streaming + resilience + obs suites =="
configure_and_build "${build_root}/tsan" -DDOCKMINE_SANITIZE=thread
"${build_root}/tsan/tests/stream_equivalence_test"
"${build_root}/tsan/tests/stream_chaos_test"
"${build_root}/tsan/tests/resilience_test"
"${build_root}/tsan/tests/obs_test"
"${build_root}/tsan/tests/obs_export_test"
"${build_root}/tsan/tests/trace_journal_test"
"${build_root}/tsan/tests/dist_wire_test"
"${build_root}/tsan/tests/dist_chaos_test"
"${build_root}/tsan/tests/serve_test"
"${build_root}/tsan/tests/serve_chaos_test"
"${build_root}/tsan/tests/timeseries_test"
"${build_root}/tsan/tests/arena_test"
"${build_root}/tsan/tests/art_test"
"${build_root}/tsan/tests/temporal_test"
# Both index backends under maximum spill churn: default is the ART, the
# map path stays covered explicitly.
DOCKMINE_SHARD_SPILL_BYTES=1 "${build_root}/tsan/tests/shard_test"
DOCKMINE_SHARD_SPILL_BYTES=1 "${build_root}/tsan/tests/shard_pipeline_test"
DOCKMINE_SHARD_SPILL_BYTES=1 DOCKMINE_SHARD_INDEX=map \
  "${build_root}/tsan/tests/shard_pipeline_test"

echo "== [3/3] obs compiled out (-DDOCKMINE_OBS=OFF) =="
configure_and_build "${build_root}/obs-off" -DDOCKMINE_OBS=OFF
"${build_root}/obs-off/tests/obs_test"
"${build_root}/obs-off/tests/obs_export_test"
"${build_root}/obs-off/tests/trace_journal_test"
"${build_root}/obs-off/tests/timeseries_test"

echo "All checks passed."
