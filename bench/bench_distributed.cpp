// Distributed-run bench: coordinator + K forked worker processes on
// loopback (DESIGN.md §12), K ∈ {1, 2, 4}, against the serial in-process
// pipeline as the baseline and byte-equality oracle. A second phase
// SIGKILLs a worker mid-lease and measures what the recovery machinery
// (liveness detection, lease reassignment, re-execution) costs in wall
// time. Writes BENCH_distributed.json (DOCKMINE_BENCH_JSON overrides) for
// CI trend tracking.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>

#include "common.h"
#include "dockmine/core/coordinator.h"
#include "dockmine/core/lease.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/core/worker.h"
#include "dockmine/json/json.h"
#include "dockmine/util/stopwatch.h"

namespace {

using namespace dockmine;

core::JobSpec bench_spec() {
  const synth::Scale scale =
      core::scale_from_env(synth::Scale{120, 20170530});
  core::JobSpec spec;
  spec.repositories = scale.repositories;
  spec.seed = scale.seed;
  spec.light_calibration = true;
  spec.gzip_level = 1;
  spec.download_workers = 4;
  spec.analyze_workers = 2;
  spec.shards = 4;
  return spec;
}

pid_t spawn_worker(std::uint16_t port, std::uint64_t id,
                   const std::string& scratch,
                   core::WorkerChaos chaos = {}) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  core::WorkerOptions options;
  options.port = port;
  options.worker_id = id;
  options.scratch_dir = scratch + "/worker-" + std::to_string(id);
  options.chaos = chaos;
  obs::set_enabled(true);
  (void)core::run_worker(options);
  ::_exit(0);
}

struct DistRun {
  double wall_seconds = 0.0;
  core::DistStats stats;
  std::string report;  ///< analysis_report_json(...).dump()
  bool ok = false;
};

/// One distributed run: `leases` partitions over `workers` forked worker
/// processes; worker index `kill_index` (when >= 0) SIGKILLs itself after
/// its first heartbeat of its first lease.
DistRun run_distributed(const core::JobSpec& spec, std::uint32_t leases,
                        int workers, const std::string& work_dir,
                        int kill_index = -1) {
  DistRun out;
  std::filesystem::remove_all(work_dir);

  core::CoordinatorOptions options;
  options.spec = spec;
  options.leases = leases;
  options.work_dir = work_dir;
  options.straggler_factor = 0;  // measure recovery, not speculation
  core::Coordinator coordinator(options);
  if (!coordinator.bind().ok()) return out;

  std::vector<pid_t> children;
  for (int i = 0; i < workers; ++i) {
    core::WorkerChaos chaos;
    chaos.die_on_first_lease = (i == kill_index);
    children.push_back(spawn_worker(coordinator.port(),
                                    static_cast<std::uint64_t>(i + 1),
                                    work_dir, chaos));
  }

  util::Stopwatch clock;
  auto report = coordinator.run();
  out.wall_seconds = clock.seconds();
  for (pid_t pid : children) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  std::filesystem::remove_all(work_dir);
  if (!report.ok()) {
    std::fprintf(stderr, "distributed run failed: %s\n",
                 report.error().to_string().c_str());
    return out;
  }
  out.stats = report.value().stats;
  out.report = core::analysis_report_json(report.value().combined).dump();
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dockmine;
  const bench::MetricsScope metrics(argc, argv);
  const core::JobSpec spec = bench_spec();
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "dockmine-bench-dist")
          .string();

  std::printf("distributed pipeline at %llu repositories "
              "(DOCKMINE_REPOS overrides)\n\n",
              static_cast<unsigned long long>(spec.repositories));

  // Serial baseline: the same job as one in-process pipeline.
  util::Stopwatch serial_clock;
  auto serial = core::run_end_to_end(
      core::lease_pipeline_options(spec, 0, 1, scratch + "/serial"));
  const double serial_wall = serial_clock.seconds();
  std::filesystem::remove_all(scratch + "/serial");
  if (!serial.ok()) {
    std::fprintf(stderr, "serial baseline failed: %s\n",
                 serial.error().to_string().c_str());
    return 1;
  }
  const std::string serial_report =
      core::analysis_report_json(serial.value()).dump();
  std::printf("  serial baseline      %7.2fs\n", serial_wall);

  // Scaling curve: K leases over K worker processes.
  auto scaling = json::Value::array();
  bool all_identical = true;
  for (std::uint32_t k : {1u, 2u, 4u}) {
    const DistRun run = run_distributed(spec, k, static_cast<int>(k),
                                        scratch + "/k" + std::to_string(k));
    if (!run.ok) return 1;
    const bool identical = run.report == serial_report;
    all_identical = all_identical && identical;
    std::printf("  K=%u workers         %7.2fs  (%.2fx vs serial, "
                "%llu heartbeats, report %s)\n",
                k, run.wall_seconds, serial_wall / run.wall_seconds,
                static_cast<unsigned long long>(run.stats.heartbeats_received),
                identical ? "identical" : "DIFFERS");
    auto entry = json::Value::object();
    entry.set("workers", std::uint64_t{k});
    entry.set("wall_seconds", run.wall_seconds);
    entry.set("speedup_vs_serial", serial_wall / run.wall_seconds);
    entry.set("heartbeats", run.stats.heartbeats_received);
    entry.set("files_received", run.stats.files_received);
    entry.set("bytes_received", run.stats.bytes_received);
    entry.set("report_identical", identical);
    scaling.push_back(std::move(entry));
  }

  // Recovery: same K=2 job, but one of the two workers SIGKILLs itself
  // mid-lease — the overhead over the clean K=2 wall is what detection +
  // reassignment + re-execution cost.
  const DistRun clean = run_distributed(spec, 2, 2, scratch + "/clean2");
  if (!clean.ok) return 1;
  const DistRun killed =
      run_distributed(spec, 2, 2, scratch + "/kill2", /*kill_index=*/0);
  if (!killed.ok) return 1;
  const bool recovery_identical = killed.report == serial_report;
  all_identical = all_identical && recovery_identical;
  const double recovery_overhead = killed.wall_seconds - clean.wall_seconds;
  std::printf("\n  K=2 clean            %7.2fs\n", clean.wall_seconds);
  std::printf("  K=2 one SIGKILL      %7.2fs  (+%.2fs recovery, "
              "%llu reassignment(s), report %s)\n",
              killed.wall_seconds, recovery_overhead,
              static_cast<unsigned long long>(killed.stats.reassignments),
              recovery_identical ? "identical" : "DIFFERS");

  auto doc = json::Value::object();
  doc.set("bench", "distributed");
  doc.set("repositories", spec.repositories);
  doc.set("seed", spec.seed);
  doc.set("serial_wall_seconds", serial_wall);
  doc.set("scaling", std::move(scaling));
  auto recovery = json::Value::object();
  recovery.set("clean_wall_seconds", clean.wall_seconds);
  recovery.set("killed_wall_seconds", killed.wall_seconds);
  recovery.set("recovery_overhead_seconds", recovery_overhead);
  recovery.set("reassignments", killed.stats.reassignments);
  recovery.set("worker_disconnects", killed.stats.worker_disconnects);
  recovery.set("missed_deadlines", killed.stats.missed_deadlines);
  recovery.set("report_identical", recovery_identical);
  doc.set("recovery", std::move(recovery));
  doc.set("all_reports_identical", all_identical);

  const char* json_path = std::getenv("DOCKMINE_BENCH_JSON");
  const std::string out_path =
      json_path != nullptr ? json_path : "BENCH_distributed.json";
  std::ofstream out(out_path, std::ios::trunc);
  if (out) {
    out << doc.dump_pretty() << "\n";
    std::printf("\n  wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
  }
  return all_identical ? 0 : 1;
}
