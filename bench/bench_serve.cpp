// Serve-daemon bench: an in-process ServeDaemon answering a mixed query
// workload (report slices, ecdf lookups, per-image reports, type
// breakdowns, status) from C concurrent connections, R requests each
// (DOCKMINE_SERVE_CONNS / DOCKMINE_SERVE_REQS override). Three phases:
// steady state; the same hammer while an ingest batch runs and commits —
// the during-ingest numbers price what snapshot isolation costs readers
// when a writer is folding; and the steady hammer against a
// telemetry-enabled daemon (sampler + latency attribution + slowlog +
// alerts), gated at <=10% p99 overhead vs. plain steady state. Reports
// p50/p90/p99/max latency and aggregate QPS per phase; writes
// BENCH_serve.json (DOCKMINE_BENCH_JSON overrides) for CI trend tracking.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/core/serve.h"
#include "dockmine/json/json.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/util/stopwatch.h"

namespace {

using namespace dockmine;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

core::JobSpec bench_spec() {
  const synth::Scale scale = core::scale_from_env(synth::Scale{40, 20170530});
  core::JobSpec spec;
  spec.repositories = scale.repositories;
  spec.seed = scale.seed;
  spec.light_calibration = true;
  spec.gzip_level = 1;
  spec.download_workers = 2;
  spec.analyze_workers = 2;
  spec.shards = 2;
  return spec;
}

/// The mixed workload: one representative of every read-path query shape.
/// `repository` parameterizes the image lookup from the live snapshot.
std::vector<core::serve::Request> workload(const std::string& repository) {
  using core::serve::Request;
  std::vector<Request> requests;
  auto query = [&requests](const char* q) -> Request& {
    Request request;
    request.q = q;
    requests.push_back(request);
    return requests.back();
  };
  query("status");
  query("report").path = "analysis.dedup";
  query("report").path = "download";
  {
    Request& r = query("ecdf");
    r.name = "layers.cls";
    r.quantile = 0.5;
  }
  query("ecdf").name = "images.cis";
  query("types");
  query("image").repository = repository;
  query("stats");
  return requests;
}

struct PhaseResult {
  std::vector<double> latencies_ms;  ///< one entry per completed request
  double wall_seconds = 0.0;
  std::uint64_t errors = 0;
};

/// C client threads, each on its own connection, issuing `per_conn`
/// requests round-robin over the workload. Latency is per request/response
/// round trip.
PhaseResult hammer(std::uint16_t port, std::size_t connections,
                   std::size_t per_conn,
                   const std::vector<core::serve::Request>& requests) {
  PhaseResult out;
  std::vector<std::vector<double>> lanes(connections);
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  util::Stopwatch clock;
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = core::serve::Client::connect(port);
      if (!client.ok()) {
        errors.fetch_add(per_conn, std::memory_order_relaxed);
        return;
      }
      lanes[c].reserve(per_conn);
      for (std::size_t i = 0; i < per_conn; ++i) {
        core::serve::Request request = requests[i % requests.size()];
        request.id = i + 1;
        const auto begin = std::chrono::steady_clock::now();
        auto response = client.value().call(request);
        const auto end = std::chrono::steady_clock::now();
        if (!response.ok() || !response.value().ok) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        lanes[c].push_back(
            std::chrono::duration<double, std::milli>(end - begin).count());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  out.wall_seconds = clock.seconds();
  out.errors = errors.load();
  for (std::vector<double>& lane : lanes) {
    out.latencies_ms.insert(out.latencies_ms.end(), lane.begin(), lane.end());
  }
  std::sort(out.latencies_ms.begin(), out.latencies_ms.end());
  return out;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

json::Value phase_json(const PhaseResult& phase) {
  const std::vector<double>& lat = phase.latencies_ms;
  auto doc = json::Value::object();
  doc.set("requests", static_cast<std::uint64_t>(lat.size()));
  doc.set("errors", phase.errors);
  doc.set("wall_seconds", phase.wall_seconds);
  doc.set("qps", phase.wall_seconds > 0.0
                     ? static_cast<double>(lat.size()) / phase.wall_seconds
                     : 0.0);
  doc.set("p50_ms", percentile(lat, 0.50));
  doc.set("p90_ms", percentile(lat, 0.90));
  doc.set("p99_ms", percentile(lat, 0.99));
  doc.set("max_ms", lat.empty() ? 0.0 : lat.back());
  return doc;
}

void print_phase(const char* name, const PhaseResult& phase) {
  std::printf(
      "  %-14s %7zu requests  %8.1f qps  p50 %7.3f ms  p90 %7.3f ms  "
      "p99 %7.3f ms  max %7.3f ms  (%llu errors)\n",
      name, phase.latencies_ms.size(),
      phase.wall_seconds > 0.0
          ? static_cast<double>(phase.latencies_ms.size()) / phase.wall_seconds
          : 0.0,
      percentile(phase.latencies_ms, 0.50), percentile(phase.latencies_ms, 0.90),
      percentile(phase.latencies_ms, 0.99),
      phase.latencies_ms.empty() ? 0.0 : phase.latencies_ms.back(),
      static_cast<unsigned long long>(phase.errors));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dockmine;
  const bench::MetricsScope metrics(argc, argv);

  const std::size_t connections =
      static_cast<std::size_t>(env_u64("DOCKMINE_SERVE_CONNS", 8));
  const std::size_t per_conn =
      static_cast<std::size_t>(env_u64("DOCKMINE_SERVE_REQS", 500));

  const core::JobSpec spec = bench_spec();
  const std::string state_dir =
      (std::filesystem::temp_directory_path() /
       ("dockmine-bench-serve-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(state_dir);

  core::serve::ServeOptions options;
  options.job = spec;
  options.state_dir = state_dir;
  core::serve::ServeDaemon daemon(options);

  std::printf("serve bench: %llu repositories (seed %llu), %zu connections x "
              "%zu requests\n",
              static_cast<unsigned long long>(spec.repositories),
              static_cast<unsigned long long>(spec.seed), connections,
              per_conn);
  util::Stopwatch start_clock;
  if (auto status = daemon.start(); !status.ok()) {
    std::fprintf(stderr, "daemon start failed: %s\n",
                 status.error().to_string().c_str());
    std::filesystem::remove_all(state_dir);
    return 1;
  }
  const double startup_seconds = start_clock.seconds();
  const auto snapshot = daemon.snapshot();
  std::printf("  started in %.2fs: epoch %llu, %zu images resident\n",
              startup_seconds,
              static_cast<unsigned long long>(snapshot->epoch),
              snapshot->images.size());
  const std::string repository =
      snapshot->images.empty() ? std::string("library/missing")
                               : snapshot->images.begin()->first;
  const std::vector<core::serve::Request> requests = workload(repository);

  // Phase 1: steady state — no writer, every answer from one epoch.
  const PhaseResult steady = hammer(daemon.port(), connections, per_conn,
                                    requests);
  print_phase("steady", steady);

  // Phase 2: the same hammer while an ingest batch runs and commits.
  // Readers are pinned to their snapshot; the fold happens beside them.
  std::atomic<bool> ingest_ok{false};
  std::thread writer([&] {
    auto client = core::serve::Client::connect(daemon.port());
    if (!client.ok()) return;
    (void)client.value().set_timeout_ms(600000);
    core::serve::Request ingest;
    ingest.kind = core::serve::RequestKind::kIngest;
    ingest.id = 1;
    ingest.repositories = std::max<std::uint64_t>(spec.repositories / 4, 2);
    ingest.seed = spec.seed + 1;
    auto response = client.value().call(ingest);
    ingest_ok.store(response.ok() && response.value().ok);
  });
  const PhaseResult during = hammer(daemon.port(), connections, per_conn,
                                    requests);
  writer.join();
  print_phase("during-ingest", during);
  const std::uint64_t final_epoch = daemon.snapshot()->epoch;
  std::printf("  ingest %s; final epoch %llu\n",
              ingest_ok.load() ? "committed" : "did not commit",
              static_cast<unsigned long long>(final_epoch));

  daemon.stop();
  std::filesystem::remove_all(state_dir);

  // Phases 3 and 4: price the continuous-telemetry subsystem. Both run
  // with obs runtime-enabled; phase 3 is the baseline (instrumented serve
  // path, no telemetry machinery), phase 4 turns on everything ISSUE 10
  // added — background sampler, per-request latency attribution, slow-query
  // journal, alert evaluation, trace journal. The gate keeps the
  // telemetry-on p99 within 10% of the obs-baseline p99 (plus a small
  // absolute floor so microsecond-scale baselines don't flap the ratio).
  const bool obs_was_enabled = obs::enabled();
  obs::set_enabled(true);

  const auto steady_phase = [&](const core::serve::ServeOptions& serve_options,
                                const char* name,
                                PhaseResult& out) -> bool {
    std::filesystem::remove_all(serve_options.state_dir);
    core::serve::ServeDaemon phase_daemon(serve_options);
    if (auto status = phase_daemon.start(); !status.ok()) {
      std::fprintf(stderr, "%s daemon start failed: %s\n", name,
                   status.error().to_string().c_str());
      return false;
    }
    out = hammer(phase_daemon.port(), connections, per_conn, requests);
    print_phase(name, out);
    phase_daemon.stop();
    std::filesystem::remove_all(serve_options.state_dir);
    return true;
  };

  core::serve::ServeOptions baseline_options;
  baseline_options.job = spec;
  baseline_options.state_dir = state_dir + "-obs-baseline";
  PhaseResult obs_baseline;
  const bool baseline_started =
      steady_phase(baseline_options, "obs-baseline", obs_baseline);
  obs::reset_all();

  obs::set_journal_enabled(true);
  core::serve::ServeOptions telemetry_options;
  telemetry_options.job = spec;
  telemetry_options.state_dir = state_dir + "-telemetry";
  telemetry_options.telemetry.enabled = true;
  telemetry_options.telemetry.sample_interval_ms = 200;
  telemetry_options.telemetry.ring_capacity = 256;
  PhaseResult telemetry;
  const bool telemetry_started =
      steady_phase(telemetry_options, "telemetry", telemetry);
  obs::reset_all();
  obs::set_journal_enabled(false);
  obs::set_enabled(obs_was_enabled);

  const double baseline_p99 = percentile(obs_baseline.latencies_ms, 0.99);
  const double telemetry_p99 = percentile(telemetry.latencies_ms, 0.99);
  const double telemetry_overhead_ratio =
      baseline_p99 > 0.0 ? telemetry_p99 / baseline_p99 : 0.0;
  const bool telemetry_ok = baseline_started && telemetry_started &&
                            obs_baseline.errors == 0 &&
                            telemetry.errors == 0 &&
                            telemetry_p99 <= baseline_p99 * 1.10 + 0.25;
  std::printf("  telemetry p99 overhead: %.2fx vs obs baseline (%s)\n",
              telemetry_overhead_ratio, telemetry_ok ? "ok" : "OVER BUDGET");

  auto doc = json::Value::object();
  doc.set("bench", "serve");
  doc.set("repositories", spec.repositories);
  doc.set("seed", spec.seed);
  doc.set("connections", static_cast<std::uint64_t>(connections));
  doc.set("requests_per_connection", static_cast<std::uint64_t>(per_conn));
  doc.set("startup_seconds", startup_seconds);
  doc.set("steady", phase_json(steady));
  doc.set("during_ingest", phase_json(during));
  doc.set("obs_baseline", phase_json(obs_baseline));
  doc.set("telemetry", phase_json(telemetry));
  doc.set("telemetry_overhead_ratio", telemetry_overhead_ratio);
  doc.set("ingest_committed", ingest_ok.load());
  doc.set("final_epoch", final_epoch);

  const char* json_path = std::getenv("DOCKMINE_BENCH_JSON");
  const std::string out_path =
      json_path != nullptr ? json_path : "BENCH_serve.json";
  std::ofstream out(out_path, std::ios::trunc);
  if (out) {
    out << doc.dump_pretty() << "\n";
    std::printf("\n  wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
  }

  const bool ok = steady.errors == 0 && during.errors == 0 &&
                  ingest_ok.load() && final_epoch == 2 && telemetry_ok;
  return ok ? 0 : 1;
}
