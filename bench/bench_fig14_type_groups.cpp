// Fig. 14 — file count and capacity shares by type group, plus Fig. 13's
// level-1 split (commonly used types own ~98.4% of capacity).
#include "common.h"
#include "dockmine/dedup/by_type.h"

int main() {
  using namespace dockmine;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  using filetype::Group;

  struct Row {
    Group group;
    const char* paper_count;
    const char* paper_capacity;
  };
  // Paper Fig. 14: Doc 44%, SC 13%, EOL 11%, Scr 9%, Img 4%; EOL holds the
  // most capacity (37%), archival is second (23%).
  const Row rows[] = {
      {Group::kDocuments, "44%", "14%"}, {Group::kSourceCode, "13%", "~8%"},
      {Group::kEol, "11%", "37%"},       {Group::kScripts, "9%", "~3%"},
      {Group::kArchival, "~7%", "23%"},  {Group::kImages, "4%", "~3%"},
      {Group::kDatabases, "~0.2%", "~5%"}, {Group::kOther, "rest", "rest"},
  };

  core::FigureTable count_table("Fig. 14a", "File count share by group");
  core::FigureTable cap_table("Fig. 14b", "Capacity share by group");
  for (const Row& row : rows) {
    count_table.row(std::string(filetype::to_string(row.group)),
                    row.paper_count,
                    core::fmt_pct(breakdown.count_share(row.group)));
    cap_table.row(std::string(filetype::to_string(row.group)),
                  row.paper_capacity,
                  core::fmt_pct(breakdown.capacity_share(row.group)));
  }
  count_table.print(std::cout);
  cap_table.print(std::cout);

  // Fig. 13 level 1: share of capacity in "commonly used" types (every
  // type whose scaled capacity exceeds the paper's 7 GB threshold).
  const double full_over_here =
      static_cast<double>(synth::Calibration::kFullFiles) /
      static_cast<double>(ctx.stats.total_files);
  const double threshold = 7e9 / full_over_here;
  double common_bytes = 0, total_bytes = 0;
  for (std::size_t t = 0; t < filetype::kTypeCount; ++t) {
    const auto& ts = breakdown.by_type(static_cast<filetype::Type>(t));
    total_bytes += static_cast<double>(ts.bytes);
    if (static_cast<double>(ts.bytes) >= threshold) {
      common_bytes += static_cast<double>(ts.bytes);
    }
  }
  core::FigureTable level1("Fig. 13", "Commonly used types (level 1)");
  level1.row("capacity in common types", "98.4%",
             core::fmt_pct(total_bytes > 0 ? common_bytes / total_bytes : 0),
             "threshold scaled from the paper's 7 GB per type");
  level1.print(std::cout);
  return 0;
}
