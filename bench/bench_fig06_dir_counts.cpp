// Fig. 6 — directories per layer.
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& dirs = ctx.stats.layer_dirs;

  core::FigureTable table("Fig. 6", "Directory count per layer");
  table.row("median dirs", "< 11", core::fmt_count(dirs.median()))
      .row("p90 dirs", "826", core::fmt_count(dirs.p90()))
      .row("min dirs", "1", core::fmt_count(dirs.min()))
      .row("max dirs", "111,940", core::fmt_count(dirs.max()),
           "paper: conjurinc/developer-quiz");
  table.print(std::cout);
  core::print_cdf(std::cout, "directories per layer", dirs, core::fmt_count);
  return 0;
}
