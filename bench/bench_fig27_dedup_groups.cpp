// Fig. 27 / §V-E — dedup ratio (capacity removed) by type group.
#include "common.h"

int main() {
  using namespace dockmine;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  using filetype::Group;

  core::FigureTable table("Fig. 27", "Dedup ratio by type group");
  auto add = [&](Group group, const char* paper) {
    table.row(std::string(filetype::to_string(group)), paper,
              core::fmt_pct(breakdown.by_group(group).capacity_removed()));
  };
  add(Group::kScripts, "98%");
  add(Group::kSourceCode, "96.8%");
  add(Group::kDocuments, "92%");
  add(Group::kEol, "86%");
  add(Group::kArchival, "~86%");
  add(Group::kImages, "~86%");
  add(Group::kDatabases, "76% (lowest)");
  add(Group::kOther, "-");
  table.row("overall", "85.69%",
            core::fmt_pct(breakdown.overall().capacity_removed()),
            "scale-dependent; ordering is the reproduction target");
  table.print(std::cout);
  return 0;
}
