// Ablation (paper §IV-A a): "it can be beneficial to store small layers
// uncompressed in the registry to reduce pull latencies." Model the pull
// latency of every layer under three policies: always-compressed,
// always-uncompressed, and threshold (small layers uncompressed).
#include "common.h"
#include "dockmine/registry/service.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);

  struct Acc {
    double compressed_ms = 0;
    double uncompressed_ms = 0;
    double oracle_ms = 0;
    std::uint64_t layers = 0;
    void add(double c, double u) {
      compressed_ms += c;
      uncompressed_ms += u;
      oracle_ms += std::min(c, u);
      ++layers;
    }
  };

  auto run_profile = [&](const char* label, registry::CostModel cost) {
    Acc small, large, all;
    for (const core::LayerAgg& agg : ctx.stats.layer_aggregates()) {
      const double fls = static_cast<double>(agg.fls);
      // compressed pull: transfer CLS + client-side decompression of FLS
      const double compressed_ms =
          cost.transfer_ms(agg.cls) + cost.decompress_per_mb_ms * fls / 1e6;
      // uncompressed pull: transfer FLS, no decompression
      const double uncompressed_ms = cost.transfer_ms(agg.fls);
      (agg.cls < 4e6 ? small : large).add(compressed_ms, uncompressed_ms);
      all.add(compressed_ms, uncompressed_ms);
    }
    auto ms = [](double total, std::uint64_t n) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f ms", n ? total / n : 0.0);
      return std::string(buf);
    };
    core::FigureTable table(
        "Ablation", std::string("Compression policy vs pull latency — ") +
                        label);
    table
        .row("small layers (CLS<4MB), compressed", "-",
             ms(small.compressed_ms, small.layers),
             "mean pull latency; n=" + std::to_string(small.layers))
        .row("small layers, stored uncompressed", "paper's proposal",
             ms(small.uncompressed_ms, small.layers), "no client-side gunzip")
        .row("large layers, compressed", "-",
             ms(large.compressed_ms, large.layers),
             "n=" + std::to_string(large.layers))
        .row("large layers, stored uncompressed", "-",
             ms(large.uncompressed_ms, large.layers))
        .row("whole registry, always compressed", "-",
             ms(all.compressed_ms, all.layers))
        .row("whole registry, per-layer oracle", "upper bound",
             ms(all.oracle_ms, all.layers),
             "store each layer in its cheaper form");
    table.print(std::cout);
    std::cout << "  small-layer speedup from storing uncompressed: "
              << core::fmt_ratio(small.compressed_ms /
                                     std::max(1.0, small.uncompressed_ms),
                                 3)
              << "; oracle vs always-compressed: "
              << core::fmt_ratio(
                     all.compressed_ms / std::max(1.0, all.oracle_ms), 3)
              << "\n";
  };

  // WAN profile: transfer is the bottleneck, compression mostly pays.
  registry::CostModel wan;
  wan.per_mb_ms = 9.0;          // ~110 MB/s
  wan.decompress_per_mb_ms = 4.5;
  run_profile("WAN client (110 MB/s)", wan);

  // Datacenter profile (the Slacker setting the paper cites): the network
  // outruns gunzip, so decompression dominates and storing small layers
  // uncompressed wins — the paper's recommendation.
  registry::CostModel lan;
  lan.base_ms = 5.0;
  lan.per_mb_ms = 1.0;          // ~1 GB/s
  lan.decompress_per_mb_ms = 4.5;
  run_profile("datacenter client (1 GB/s)", lan);
  return 0;
}
