// Fig. 22 — image media files breakdown.
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  bench::print_subtype_figure(
      "Fig. 22", "Image media files", breakdown,
      {
          {Type::kPng, "67%", "45%"},
          {Type::kJpeg, "~20% of capacity", "~20%"},
          {Type::kGif, "small", "small"},
          {Type::kSvg, "small", "small"},
          {Type::kOtherImage, "small", "small"},
      });
  return 0;
}
