// Fig. 29 — dedup within source code (the Google-Test replication story).
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  bench::print_subtype_dedup(
      "Fig. 29", "Source code", breakdown,
      {
          {Type::kCSource, "> 90%", "redundant C/C++ = 77% of SC capacity"},
          {Type::kPerlModule, "> 90%", ""},
          {Type::kRubyModule, "> 90%", ""},
          {Type::kPascalSource, "> 90%", ""},
          {Type::kFortranSource, "> 90%", ""},
          {Type::kBasicSource, "> 90%", ""},
          {Type::kLispSource, "< 90% (lowest)", ""},
      });
  const auto& sc = ctx.stats.file_index
                       ? dedup::TypeBreakdown(*ctx.stats.file_index)
                             .by_type(Type::kCSource)
                       : dedup::TypeStats{};
  std::cout << "  redundant C/C++ capacity share of SC group: "
            << core::fmt_pct(
                   static_cast<double>(sc.bytes - sc.unique_bytes) /
                   static_cast<double>(
                       breakdown.by_group(filetype::Group::kSourceCode).bytes -
                       breakdown.by_group(filetype::Group::kSourceCode)
                           .unique_bytes))
            << " (paper: 77%)\n";
  return 0;
}
