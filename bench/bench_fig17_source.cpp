// Fig. 17 — source code breakdown by language.
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  bench::print_subtype_figure(
      "Fig. 17", "Source code", breakdown,
      {
          {Type::kCSource, "80.3%", "~80%"},
          {Type::kPerlModule, "9%", "11%"},
          {Type::kRubyModule, "8%", "3%"},
          {Type::kPascalSource, "small", "small"},
          {Type::kFortranSource, "small", "small"},
          {Type::kBasicSource, "small", "small"},
          {Type::kLispSource, "small", "small"},
      });
  return 0;
}
