// Fig. 21 — database files breakdown.
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  bench::print_subtype_figure(
      "Fig. 21", "Database files", breakdown,
      {
          {Type::kBerkeleyDb, "33%", "< 40% (with MySQL)"},
          {Type::kMysql, "30%", "(with BDB)"},
          {Type::kSqlite, "7%", "57%"},
          {Type::kOtherDb, "~30%", "rest"},
      });
  return 0;
}
