// Fig. 20 — archival files breakdown plus the paper's per-type average
// sizes (gz 67 KB, bz2 199 KB, tar 466 KB, xz 534 KB).
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  bench::print_subtype_figure(
      "Fig. 20", "Archival files", breakdown,
      {
          {Type::kZipGzip, "96.3%", "70%"},
          {Type::kBzip2, "~2%", "small"},
          {Type::kTarArchive, "~1%", "small"},
          {Type::kXz, "~0.5%", "small"},
          {Type::kOtherArchive, "small", "small"},
      });

  core::FigureTable sizes("Fig. 20 (avg sizes)", "Average archival file size");
  sizes.row("Zip/Gzip", "67 KB",
            core::fmt_bytes(breakdown.by_type(Type::kZipGzip).avg_size()))
      .row("Bzip2", "199 KB",
           core::fmt_bytes(breakdown.by_type(Type::kBzip2).avg_size()))
      .row("Tar", "466 KB",
           core::fmt_bytes(breakdown.by_type(Type::kTarArchive).avg_size()))
      .row("XZ", "534 KB",
           core::fmt_bytes(breakdown.by_type(Type::kXz).avg_size()));
  sizes.print(std::cout);
  return 0;
}
