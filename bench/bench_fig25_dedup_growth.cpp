// Fig. 25 / §V-C — dedup ratio growth with dataset size: 4 random samples
// plus the full snapshot, exactly like the paper's methodology.
#include "common.h"
#include "dockmine/dedup/growth.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;  // growth builds its own per-sample indexes
  auto ctx = bench::make_context(options);
  const auto& layers = ctx.hub.unique_layers();

  const std::vector<std::uint64_t> sizes = {
      std::max<std::uint64_t>(1, layers.size() / 64),
      std::max<std::uint64_t>(1, layers.size() / 16),
      std::max<std::uint64_t>(1, layers.size() / 4),
      std::max<std::uint64_t>(1, layers.size() / 2),
      layers.size()};

  const auto points = dedup::dedup_growth(
      layers.size(), sizes,
      [&](std::uint64_t ordinal, std::uint32_t dense,
          dedup::FileDedupIndex& index) {
        const synth::LayerSpec spec = ctx.hub.layer_spec(layers[ordinal]);
        ctx.hub.layers().for_each_file(
            spec, [&](const synth::FileInstance& f) {
              index.add(f.content, f.size, f.type, dense);
            });
      },
      /*seed=*/20170530);

  std::cout << "\n=== Fig. 25: dedup ratio vs dataset size ===\n";
  std::cout << "paper: count 3.6x -> 31.5x, capacity 1.9x -> 6.9x as the\n"
               "dataset grows 1,000 -> 1.7M layers; the ratio rises almost\n"
               "linearly in log-size. Measured:\n\n";
  std::cout << "  layers      files          count-dedup  capacity-dedup\n";
  for (const auto& point : points) {
    std::printf("  %-10llu  %-13s  %-11s  %s\n",
                static_cast<unsigned long long>(point.sample_layers),
                util::format_count(point.totals.total_files).c_str(),
                core::fmt_ratio(point.totals.count_ratio(), 1).c_str(),
                core::fmt_ratio(point.totals.capacity_ratio(), 1).c_str());
  }
  const double full_n = static_cast<double>(synth::Calibration::kFullFiles);
  std::cout << "\n  Heaps-fit extrapolation to the paper's 5.28G files: "
            << core::fmt_ratio(
                   full_n / (synth::kHeapsK * std::pow(full_n, synth::kHeapsBeta)), 1)
            << " count dedup (paper: 31.5x)\n";
  return 0;
}
