// Ablation (paper §IV-B a): registry layer cache under Zipf-skewed pulls —
// "Docker Hub is a good fit for caching popular repositories or images."
#include <unordered_map>

#include "common.h"
#include "dockmine/core/cache_sim.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);

  std::unordered_map<synth::LayerId, std::size_t> dense;
  for (std::size_t i = 0; i < ctx.hub.unique_layers().size(); ++i) {
    dense[ctx.hub.unique_layers()[i]] = i;
  }
  std::vector<core::CachedImage> images;
  std::uint64_t total_bytes = 0;
  for (const synth::RepoSpec& repo : ctx.hub.repositories()) {
    if (repo.image_index < 0 || repo.requires_auth) continue;
    core::CachedImage entry;
    for (synth::LayerId id : ctx.hub.images()[repo.image_index].layers) {
      const auto& agg = ctx.stats.layer_aggregates()[dense.at(id)];
      entry.layer_keys.push_back(id);
      entry.layer_sizes.push_back(agg.cls);
      total_bytes += agg.cls;
    }
    entry.popularity_weight = static_cast<double>(repo.pull_count) + 1.0;
    images.push_back(std::move(entry));
  }

  std::cout << "\n=== Ablation: LRU layer cache hit ratio vs capacity ===\n";
  std::cout << "  dataset compressed size: " << util::format_bytes(total_bytes)
            << "; pulls follow the Fig. 8 popularity skew\n\n";
  std::cout << "  cache capacity   object hit%   byte hit%\n";
  for (double frac : {0.0001, 0.0005, 0.002, 0.01, 0.05, 0.25}) {
    const auto capacity =
        static_cast<std::uint64_t>(frac * static_cast<double>(total_bytes));
    const auto result =
        core::simulate_layer_cache(images, capacity, 50000, 20170530);
    std::printf("  %-15s  %-11s  %s\n",
                util::format_bytes(capacity).c_str(),
                core::fmt_pct(result.hit_ratio()).c_str(),
                core::fmt_pct(result.byte_hit_ratio()).c_str());
  }
  std::cout << "\n  takeaway: a cache holding a few percent of the dataset\n"
               "  already serves most requests, confirming the paper's\n"
               "  caching recommendation.\n";
  return 0;
}
