// Fig. 12 — files per image.
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& files = ctx.stats.image_files;

  core::FigureTable table("Fig. 12", "File count per image");
  table.row("median files", "1,090", core::fmt_count(files.median()))
      .row("p90 files", "64,780", core::fmt_count(files.p90()));
  table.print(std::cout);
  core::print_cdf(std::cout, "files per image", files, core::fmt_count);
  return 0;
}
