// Ablation: what resilience costs and what it buys — the same pull
// workload under increasing seeded fault rates, with and without the
// ResilientSource decorator. Shows (a) the bare downloader losing images as
// faults rise, (b) the resilient stack converging to the fault-free outcome,
// and (c) the retry/backoff overhead it pays to get there. Backoff sleeps
// run on a virtual clock so the table reports modeled backoff time without
// slowing the bench.
#include <atomic>
#include <cstdio>
#include <memory>

#include "common.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/registry/faults.h"
#include "dockmine/registry/resilient.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dockmine;
  const bench::MetricsScope metrics(argc, argv);
  const synth::Scale scale = core::scale_from_env(synth::Scale{250, 20170530});
  std::cout << "snapshot: " << scale.repositories
            << " repositories (light calibration, bytes mode)\n";
  synth::HubModel hub(synth::Calibration::light(), scale);
  registry::Service service;
  synth::Materializer materializer(hub, 1);
  if (auto pushed = materializer.populate(service); !pushed.ok()) {
    std::fprintf(stderr, "%s\n", pushed.error().to_string().c_str());
    return 1;
  }
  std::vector<std::string> repositories;
  for (const auto& repo : hub.repositories()) repositories.push_back(repo.name);
  const std::uint64_t downloadable = hub.downloadable_images();

  auto clock = std::make_shared<std::atomic<double>>(0.0);
  const registry::TimeSource virtual_time{
      [clock] { return clock->load(); },
      [clock](double ms) { clock->fetch_add(ms); }};

  struct Row {
    double transient;  ///< per-attempt transient fault probability
    double corrupt;    ///< per-blob corruption probability
  };
  const Row rows[] = {{0.0, 0.0}, {0.05, 0.005}, {0.15, 0.01},
                      {0.30, 0.02}, {0.50, 0.05}};

  std::cout << "\n=== Ablation: fault rate vs pull completeness ===\n\n"
            << "  faults  corrupt  stack      images        retries  "
            << "backoff(s)  wall(s)\n";
  for (const Row& row : rows) {
    for (const bool resilient : {false, true}) {
      registry::FaultSpec spec;
      spec.seed = 20170530;
      spec.p_unavailable = row.transient * 0.6;
      spec.p_reset = row.transient * 0.4;
      spec.p_truncate = row.corrupt * 0.5;
      spec.p_bitflip = row.corrupt * 0.5;
      registry::FaultySource faulty(service, spec);

      registry::RetryPolicy retry;
      retry.max_attempts = 8;
      retry.base_delay_ms = 25.0;
      retry.max_delay_ms = 2000.0;
      registry::ResilientSource shield(faulty, retry, {}, spec.seed,
                                       virtual_time);
      registry::Source& source =
          resilient ? static_cast<registry::Source&>(shield) : faulty;

      downloader::Options options;
      options.workers = 8;
      downloader::Downloader downloader(source, options);
      util::Stopwatch stopwatch;
      const double backoff_before = clock->load();
      const auto stats = downloader.run(repositories, nullptr);
      const double wall = stopwatch.seconds();
      const auto shield_stats = shield.stats();
      std::printf("  %5.0f%%  %6.1f%%  %-9s  %5llu/%-6llu  %-7llu  %-10.1f  %.2f\n",
                  row.transient * 100.0, row.corrupt * 100.0,
                  resilient ? "resilient" : "bare",
                  static_cast<unsigned long long>(stats.succeeded),
                  static_cast<unsigned long long>(downloadable),
                  static_cast<unsigned long long>(
                      resilient ? shield_stats.retries : stats.retries),
                  resilient ? (clock->load() - backoff_before) / 1000.0 : 0.0,
                  wall);
    }
  }
  std::cout << "\n  (images = repositories pulled completely / downloadable;\n"
               "  backoff is modeled virtual-clock time, not wall time. Rows\n"
               "  where requests exhaust their attempts — the 50% storm — can\n"
               "  vary by a few retries across runs: a permanently failed\n"
               "  shared layer makes the surviving image, and therefore the\n"
               "  downstream fetch set, scheduling-dependent.)\n";
  return 0;
}
