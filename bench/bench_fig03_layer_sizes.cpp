// Fig. 3 — layer size distribution (CLS and FLS): CDFs plus the 0-128 MB
// histogram panel the paper zooms into.
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& s = ctx.stats;

  core::FigureTable table("Fig. 3", "Layer size distribution");
  table.row("CLS median", "< 4 MB", core::fmt_bytes(s.layer_cls.median()))
      .row("CLS p90", "63 MB", core::fmt_bytes(s.layer_cls.p90()))
      .row("FLS median", "< 4 MB", core::fmt_bytes(s.layer_fls.median()))
      .row("FLS p90", "177 MB", core::fmt_bytes(s.layer_fls.p90()))
      .row("layers with CLS < 4 MB", "~50%",
           core::fmt_pct(s.layer_cls.fraction_at_or_below(4e6)))
      .row("layers with FLS < 4 MB", "~50%",
           core::fmt_pct(s.layer_fls.fraction_at_or_below(4e6)))
      .row("layers with CLS < 5 MB", "> 55%",
           core::fmt_pct(s.layer_cls.fraction_at_or_below(5e6)),
           "paper: >1M of 1.79M layers");
  table.print(std::cout);

  core::print_cdf(std::cout, "compressed layer size (CLS)", s.layer_cls,
                  core::fmt_bytes);
  core::print_cdf(std::cout, "files-in-layer size (FLS)", s.layer_fls,
                  core::fmt_bytes);

  stats::LinearHistogram cls_hist(0, 128e6, 26);
  stats::LinearHistogram fls_hist(0, 128e6, 26);
  for (double v : s.layer_cls.sorted_samples()) cls_hist.add(v);
  for (double v : s.layer_fls.sorted_samples()) fls_hist.add(v);
  core::print_histogram(std::cout, "CLS, 0-128 MB (Fig. 3b)", cls_hist,
                        core::fmt_bytes);
  core::print_histogram(std::cout, "FLS, 0-128 MB (Fig. 3b)", fls_hist,
                        core::fmt_bytes);
  return 0;
}
