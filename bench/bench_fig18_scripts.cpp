// Fig. 18 — scripts breakdown.
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  bench::print_subtype_figure(
      "Fig. 18", "Scripts", breakdown,
      {
          {Type::kPythonScript, "53.5%", "66%"},
          {Type::kShellScript, "20%", "6%"},
          {Type::kRubyScript, "10%", "5%"},
          {Type::kPerlScript, "small", "small"},
          {Type::kPhpScript, "small", "small"},
          {Type::kNodeScript, "small", "small"},
          {Type::kMakefile, "small", "small"},
          {Type::kM4Script, "small", "small"},
          {Type::kAwkScript, "small", "small"},
          {Type::kTclScript, "small", "small"},
          {Type::kOtherScript, "small", "small"},
      });
  return 0;
}
