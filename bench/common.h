// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary regenerates one figure of the paper: it builds the
// synthetic snapshot at the configured scale (env DOCKMINE_REPOS /
// DOCKMINE_SEED override), computes the statistics the figure needs, and
// prints a paper-vs-measured table plus the CDF/histogram panels.
// Absolute values at reduced scale differ from the paper where they are
// scale-dependent (dedup ratios grow with dataset size, Fig. 25); the
// tables say so in their notes.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "dockmine/core/dataset.h"
#include "dockmine/obs/export.h"
#include "dockmine/util/bytes.h"
#include "dockmine/core/report.h"
#include "dockmine/synth/generator.h"

namespace dockmine::bench {

/// `--metrics` on a bench command line (or env DOCKMINE_METRICS=1) enables
/// obs for the run and dumps the collected report on exit.
inline bool metrics_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--metrics") return true;
  }
  const char* env = std::getenv("DOCKMINE_METRICS");
  return env != nullptr && std::string_view(env) != "0";
}

/// RAII: enables obs on construction (when requested), prints the metrics
/// dump and disables obs again on destruction.
class MetricsScope {
 public:
  explicit MetricsScope(bool active) : active_(active) {
    if (active_) {
      obs::reset_all();
      obs::set_enabled(true);
    }
  }
  MetricsScope(int argc, char** argv)
      : MetricsScope(metrics_requested(argc, argv)) {}
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;
  ~MetricsScope() {
    if (!active_) return;
    obs::set_enabled(false);
    std::cout << "\n=== metrics (--metrics) ===\n";
    core::print_metrics(std::cout, obs::collect());
  }

 private:
  bool active_;
};

inline synth::Scale bench_scale() {
  return core::scale_from_env(synth::Scale::bench());
}

struct Context {
  synth::HubModel hub;
  core::DatasetStats stats;
};

inline Context make_context(core::DatasetOptions options = {}) {
  const synth::Scale scale = bench_scale();
  std::cout << "snapshot: " << scale.repositories
            << " repositories (seed " << scale.seed
            << "; DOCKMINE_REPOS / DOCKMINE_SEED override)\n";
  synth::HubModel hub(synth::Calibration::paper(), scale);
  core::DatasetStats stats = core::DatasetStats::compute(hub, options);
  std::cout << "generated " << stats.image_count << " images, "
            << stats.unique_layer_count << " unique layers, "
            << util::format_count(stats.total_files) << " files in "
            << stats.compute_seconds << "s\n";
  return Context{std::move(hub), std::move(stats)};
}

inline std::string q(const stats::Ecdf& cdf, double quantile,
                     const core::ValueFormatter& fmt) {
  return cdf.empty() ? "n/a" : fmt(cdf.quantile(quantile));
}

}  // namespace dockmine::bench

// ---- subtype figure helper (Figs. 16-22) ----
#include "dockmine/dedup/by_type.h"

namespace dockmine::bench {

struct SubtypeRow {
  filetype::Type type;
  const char* paper_count;
  const char* paper_capacity;
};

/// Print a within-group count/capacity share table (a Figs. 16-22 panel).
inline void print_subtype_figure(const std::string& fig,
                                 const std::string& title,
                                 const dedup::TypeBreakdown& breakdown,
                                 std::initializer_list<SubtypeRow> rows) {
  core::FigureTable count_table(fig + "a", title + " — file count share");
  core::FigureTable cap_table(fig + "b", title + " — capacity share");
  for (const SubtypeRow& row : rows) {
    count_table.row(std::string(filetype::to_string(row.type)),
                    row.paper_count,
                    core::fmt_pct(breakdown.count_share(row.type)));
    cap_table.row(std::string(filetype::to_string(row.type)),
                  row.paper_capacity,
                  core::fmt_pct(breakdown.capacity_share(row.type)));
  }
  count_table.print(std::cout);
  cap_table.print(std::cout);
}

/// Print a per-type dedup table (a Figs. 28-29 panel): capacity-removed
/// percentage per subtype.
inline void print_subtype_dedup(const std::string& fig,
                                const std::string& title,
                                const dedup::TypeBreakdown& breakdown,
                                std::initializer_list<SubtypeRow> rows) {
  core::FigureTable table(fig, title + " — dedup ratio (capacity removed)");
  for (const SubtypeRow& row : rows) {
    table.row(std::string(filetype::to_string(row.type)), row.paper_count,
              core::fmt_pct(breakdown.by_type(row.type).capacity_removed()),
              row.paper_capacity);
  }
  table.print(std::cout);
}

}  // namespace dockmine::bench
