// Fig. 5 — files per layer.
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& files = ctx.stats.layer_files;

  core::FigureTable table("Fig. 5", "File count per layer");
  table.row("median files", "< 30", core::fmt_count(files.median()))
      .row("p90 files", "7,410", core::fmt_count(files.p90()))
      .row("empty layers", "7%", core::fmt_pct(files.fraction_equal(0)))
      .row("single-file layers", "27%", core::fmt_pct(files.fraction_equal(1)))
      .row("max files", "826,196", core::fmt_count(files.max()),
           "paper: a Debian image layer");
  table.print(std::cout);
  core::print_cdf(std::cout, "files per layer", files, core::fmt_count);
  return 0;
}
