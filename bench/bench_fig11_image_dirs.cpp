// Fig. 11 — directories per image.
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& dirs = ctx.stats.image_dirs;

  core::FigureTable table("Fig. 11", "Directory count per image");
  table.row("median dirs", "296", core::fmt_count(dirs.median()))
      .row("p90 dirs", "7,344", core::fmt_count(dirs.p90()));
  table.print(std::cout);
  core::print_cdf(std::cout, "directories per image", dirs, core::fmt_count);
  return 0;
}
