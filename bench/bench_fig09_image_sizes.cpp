// Fig. 9 — image size distribution (CIS, FIS).
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& s = ctx.stats;

  core::FigureTable table("Fig. 9", "Image size distribution");
  table.row("CIS median", "17 MB", core::fmt_bytes(s.image_cis.median()),
            "see EXPERIMENTS.md: paper CIS/FIS medians imply a 5.5x image-"
            "level ratio vs 2.6x at layer level")
      .row("CIS p90", "0.48 GB", core::fmt_bytes(s.image_cis.p90()))
      .row("FIS median", "94 MB", core::fmt_bytes(s.image_fis.median()))
      .row("FIS p90", "1.3 GB", core::fmt_bytes(s.image_fis.p90()))
      .row("max FIS", "498 GB (Ubuntu-based)",
           core::fmt_bytes(s.image_fis.max()), "scale-dependent tail");
  table.print(std::cout);
  core::print_cdf(std::cout, "compressed image size (CIS)", s.image_cis,
                  core::fmt_bytes);
  core::print_cdf(std::cout, "files-in-image size (FIS)", s.image_fis,
                  core::fmt_bytes);
  return 0;
}
