// Ablation: gzip level trade-off for registry storage — compression ratio
// vs (de)compression throughput over representative layer content
// (google-benchmark). Context for the paper's "compression is one of the
// major sources of latency when pulling" observation.
#include <benchmark/benchmark.h>

#include "dockmine/compress/content_gen.h"
#include "dockmine/compress/gzip.h"
#include "dockmine/util/rng.h"

namespace {

using namespace dockmine;

const std::string& layer_like_content() {
  static const std::string content = [] {
    util::Rng rng(3);
    return compress::generate(8 << 20, 2.6, rng);  // paper's median ratio
  }();
  return content;
}

void BM_GzipCompress(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  const std::string& raw = layer_like_content();
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    auto member = compress::gzip_compress(raw, level);
    compressed_size = member.value().size();
    benchmark::DoNotOptimize(member);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
  state.counters["ratio"] =
      static_cast<double>(raw.size()) / static_cast<double>(compressed_size);
}
BENCHMARK(BM_GzipCompress)->Arg(1)->Arg(6)->Arg(9)->Unit(benchmark::kMillisecond)->MinTime(0.5);

void BM_GzipDecompress(benchmark::State& state) {
  const std::string member =
      compress::gzip_compress(layer_like_content(), 6).value();
  for (auto _ : state) {
    auto raw = compress::gzip_decompress(member);
    benchmark::DoNotOptimize(raw);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(layer_like_content().size()));
}
BENCHMARK(BM_GzipDecompress)->Unit(benchmark::kMillisecond)->MinTime(0.5);

}  // namespace

BENCHMARK_MAIN();
