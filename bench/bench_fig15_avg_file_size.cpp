// Fig. 15 — average file size by type group.
#include "common.h"
#include "dockmine/dedup/by_type.h"

int main() {
  using namespace dockmine;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  using filetype::Group;

  core::FigureTable table("Fig. 15", "Average file size by group");
  table.row("DB.", "978.8 KB",
            core::fmt_bytes(breakdown.by_group(Group::kDatabases).avg_size()),
            "paper: much bigger than every other group")
      .row("EOL", "~100 KB",
           core::fmt_bytes(breakdown.by_group(Group::kEol).avg_size()))
      .row("Arch.", "~100 KB",
           core::fmt_bytes(breakdown.by_group(Group::kArchival).avg_size()))
      .row("SC.", "(small)",
           core::fmt_bytes(breakdown.by_group(Group::kSourceCode).avg_size()))
      .row("Scr.", "(small)",
           core::fmt_bytes(breakdown.by_group(Group::kScripts).avg_size()))
      .row("Doc.", "(small)",
           core::fmt_bytes(breakdown.by_group(Group::kDocuments).avg_size()))
      .row("Img.", "(small)",
           core::fmt_bytes(breakdown.by_group(Group::kImages).avg_size()))
      .row("overall mean", "31.6 KB (167 TB / 5.28G files)",
           core::fmt_bytes(breakdown.overall().avg_size()));
  table.print(std::cout);
  return 0;
}
