// Ablation: transport cost — the same crawl+pull workload against the
// in-process Service vs the real HTTP gateway on loopback, across worker
// counts. Quantifies what the wire costs and how parallelism hides it.
#include <cstdio>

#include "common.h"
#include "dockmine/crawler/crawler.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/registry/http_gateway.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/util/stopwatch.h"

int main() {
  using namespace dockmine;
  const synth::Scale scale = core::scale_from_env(synth::Scale{250, 20170530});
  std::cout << "snapshot: " << scale.repositories
            << " repositories (light calibration, bytes mode)\n";
  synth::HubModel hub(synth::Calibration::light(), scale);
  registry::Service service;
  synth::Materializer materializer(hub, 1);
  if (auto pushed = materializer.populate(service); !pushed.ok()) {
    std::fprintf(stderr, "%s\n", pushed.error().to_string().c_str());
    return 1;
  }
  registry::SearchIndex search(service);
  crawler::Crawler crawler(search);
  const auto crawl = crawler.crawl_all();

  registry::HttpGateway gateway(service, &search);
  auto server = gateway.serve(0, 8);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().to_string().c_str());
    return 1;
  }

  std::cout << "\n=== Ablation: in-process vs HTTP transport ===\n\n";
  std::cout << "  transport   workers  wall(s)  images/s  MB/s\n";
  auto run_one = [&](const char* name, registry::Source& source,
                     std::size_t workers) {
    downloader::Options options;
    options.workers = workers;
    downloader::Downloader downloader(source, options);
    util::Stopwatch clock;
    const auto stats = downloader.run(crawl.repositories, nullptr);
    const double wall = clock.seconds();
    std::printf("  %-10s  %-7zu  %-7.2f  %-8.0f  %.1f\n", name, workers, wall,
                static_cast<double>(stats.succeeded) / wall,
                static_cast<double>(stats.bytes_downloaded) / 1e6 / wall);
  };
  for (std::size_t workers : {1, 2, 4, 8}) {
    run_one("in-proc", service, workers);
  }
  registry::RemoteRegistry remote(server.value()->port());
  for (std::size_t workers : {1, 2, 4, 8}) {
    run_one("http", remote, workers);
  }
  std::cout << "\n  (HTTP rows include full request framing, socket copies\n"
               "  and the gateway's JSON error surface on misses.)\n";
  server.value()->stop();
  return 0;
}
