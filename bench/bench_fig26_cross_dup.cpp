// Fig. 26 / §V-D — cross-layer and cross-image file duplicates.
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = true;
  options.cross_dup = true;
  auto ctx = bench::make_context(options);
  const auto& s = ctx.stats;

  core::FigureTable table("Fig. 26", "Cross-layer / cross-image duplicates");
  table.row("p10 layer dup fraction", ">= 97.6% (90% of layers above)",
            core::fmt_pct(s.cross_layer_dup.quantile(0.1)),
            "rises with scale; see EXPERIMENTS.md")
      .row("median layer dup fraction", "(high)",
           core::fmt_pct(s.cross_layer_dup.median()))
      .row("p10 image dup fraction", ">= 99.4% (90% of images above)",
           core::fmt_pct(s.cross_image_dup.quantile(0.1)))
      .row("median image dup fraction", "(high)",
           core::fmt_pct(s.cross_image_dup.median()));
  table.print(std::cout);
  core::print_cdf(std::cout, "per-layer cross-layer duplicate fraction",
                  s.cross_layer_dup, [](double v) { return core::fmt_ratio(v); });
  core::print_cdf(std::cout, "per-image cross-image duplicate fraction",
                  s.cross_image_dup, [](double v) { return core::fmt_ratio(v); });
  return 0;
}
