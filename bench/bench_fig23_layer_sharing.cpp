// Fig. 23 / §V-A — layer sharing: reference-count CDF, the empty layer and
// top base stacks, and the 47 TB -> 85 TB (1.8x) savings estimate.
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& sharing = ctx.stats.sharing;
  const auto refs = sharing.reference_count_cdf();

  core::FigureTable table("Fig. 23", "Layer reference counts & sharing");
  table.row("layers referenced once", "~90%",
            core::fmt_pct(refs.fraction_equal(1)))
      .row("layers referenced twice", "~5%",
           core::fmt_pct(refs.fraction_equal(2)))
      .row("layers referenced > 25x", "< 1%",
           core::fmt_pct(1.0 - refs.fraction_at_or_below(25)))
      .row("max references (empty layer)", "184,171 of 355,319 (51.8%)",
           core::fmt_pct(refs.max() /
                         static_cast<double>(sharing.images_seen())))
      .row("sharing dedup ratio", "1.8x (47 TB vs 85 TB)",
           core::fmt_ratio(sharing.sharing_ratio()))
      .row("stored compressed bytes", "47 TB (at full scale)",
           core::fmt_bytes(static_cast<double>(sharing.physical_bytes())))
      .row("without sharing", "85 TB (at full scale)",
           core::fmt_bytes(static_cast<double>(sharing.logical_bytes())));
  table.print(std::cout);
  core::print_cdf(std::cout, "references per layer", refs, core::fmt_count);

  std::cout << "\n  top shared layers (paper: empty layer, then distro"
               " bases at 29,200-33,413 refs):\n";
  for (const auto& top : sharing.top(6)) {
    std::cout << "    refs=" << top.references
              << "  cls=" << util::format_bytes(top.cls)
              << (top.cls < 100 ? "  <- the empty layer" : "") << "\n";
  }
  return 0;
}
