// Fig. 28 — dedup within the EOL group.
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  bench::print_subtype_dedup(
      "Fig. 28", "EOL files", breakdown,
      {
          {Type::kElfSharedObject, "~87%", "redundant ELF = 73.4% of EOL capacity"},
          {Type::kElfExecutable, "~87%", ""},
          {Type::kElfRelocatable, "~87%", ""},
          {Type::kPythonBytecode, "> 77%", "67% of intermediate capacity"},
          {Type::kJavaClass, "> 77%", ""},
          {Type::kTerminfo, "> 77%", ""},
          {Type::kMsExecutable, "~87%", ""},
          {Type::kStaticLibrary, "53.5% (lowest)", "libraries"},
          {Type::kCoff, "61%", ""},
          {Type::kDebRpmPackage, "-", ""},
      });
  return 0;
}
