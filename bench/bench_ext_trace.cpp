// Extension: trace-driven cache evaluation — the paper's caching
// recommendation (§IV-B) evaluated the way production registry studies do
// (its refs [28][29]): Poisson pull arrivals with Fig.-8 popularity,
// optional trending drift, replayed against an LRU layer cache.
#include <unordered_map>

#include "common.h"
#include "dockmine/core/trace.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);

  std::unordered_map<synth::LayerId, std::size_t> dense;
  for (std::size_t i = 0; i < ctx.hub.unique_layers().size(); ++i) {
    dense[ctx.hub.unique_layers()[i]] = i;
  }
  std::vector<core::CachedImage> images;
  std::vector<double> weights;
  std::uint64_t dataset_bytes = 0;
  for (const synth::RepoSpec& repo : ctx.hub.repositories()) {
    if (repo.image_index < 0 || repo.requires_auth) continue;
    core::CachedImage entry;
    for (synth::LayerId id : ctx.hub.images()[repo.image_index].layers) {
      const auto& agg = ctx.stats.layer_aggregates()[dense.at(id)];
      entry.layer_keys.push_back(id);
      entry.layer_sizes.push_back(agg.cls);
      dataset_bytes += agg.cls;
    }
    weights.push_back(static_cast<double>(repo.pull_count) + 1.0);
    images.push_back(std::move(entry));
  }

  const registry::CostModel cost;
  std::cout << "\n=== Extension: trace replay (Poisson pulls, Fig. 8 skew) ===\n";
  std::cout << "  dataset " << util::format_bytes(dataset_bytes)
            << "; 2h at 20 pulls/s; latency = origin transfer vs cache\n\n";
  std::cout << "  cache     drift  hit%    offload  p50(ms)  p99(ms)\n";
  for (double drift : {0.0, 0.3}) {
    core::PullTraceGenerator::Options trace_options;
    trace_options.rate_per_s = 20.0;
    trace_options.drift_fraction = drift;
    trace_options.drift_period_s = 900.0;
    core::PullTraceGenerator generator(weights, trace_options);
    const auto trace = generator.generate(2 * 3600.0);
    for (double frac : {0.01, 0.05, 0.25}) {
      const auto capacity = static_cast<std::uint64_t>(
          frac * static_cast<double>(dataset_bytes));
      const auto result = replay_trace(trace, images, capacity, cost);
      std::printf("  %-8s  %-5.1f  %-6s  %-7s  %-7.0f  %.0f\n",
                  util::format_bytes(capacity).c_str(), drift,
                  core::fmt_pct(result.hit_ratio()).c_str(),
                  core::fmt_pct(result.origin_offload()).c_str(),
                  result.pull_latency_ms.median(),
                  result.pull_latency_ms.quantile(0.99));
    }
  }
  std::cout << "\n  takeaway: the static-popularity conclusion (small cache,\n"
               "  big offload) survives drift — trending images refill the\n"
               "  cache within one period.\n";
  return 0;
}
