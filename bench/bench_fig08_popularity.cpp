// Fig. 8 — repository popularity (pull counts): skewed CDF, the low-pull
// peaks, the secondary mode near 37, and the paper's named top-5.
#include "common.h"
#include "dockmine/synth/popularity.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& pulls = ctx.stats.repo_pulls;

  core::FigureTable table("Fig. 8", "Repository popularity (pulls)");
  table.row("median pulls", "40", core::fmt_count(pulls.median()))
      .row("p90 pulls", "333", core::fmt_count(pulls.p90()))
      .row("max pulls", "650M (nginx)", core::fmt_count(pulls.max()))
      .row("repos pulled 0-2 times", "31,200 of 457,627 (6.8%)",
           core::fmt_pct(pulls.fraction_at_or_below(2)))
      .row("repos pulled 3-5 times", "34,100 of 457,627 (7.5%)",
           core::fmt_pct(pulls.fraction_at_or_below(5) -
                         pulls.fraction_at_or_below(2)));
  table.print(std::cout);
  core::print_cdf(std::cout, "pull count per repository", pulls,
                  core::fmt_count);

  stats::LinearHistogram hist(0, 100, 25);
  for (double v : pulls.sorted_samples()) {
    if (v < 100) hist.add(v);
  }
  core::print_histogram(std::cout,
                        "pull count 0-100 (Fig. 8b; note the ~37 mode)",
                        hist, core::fmt_count);

  std::cout << "\n  top pulled repositories (paper's §IV-B list):\n";
  for (const auto& repo : synth::PopularityModel::top_repositories()) {
    std::cout << "    " << repo.name << "  "
              << util::format_count(repo.pulls) << " pulls\n";
  }
  return 0;
}
