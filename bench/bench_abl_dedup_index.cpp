// Ablation: dedup index data structure — the open-addressing FlatMap64
// behind FileDedupIndex vs std::unordered_map (google-benchmark). At paper
// scale the index holds ~169M entries, so constant factors matter.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "dockmine/dedup/file_dedup.h"
#include "dockmine/util/flat_map.h"
#include "dockmine/util/rng.h"

namespace {

using namespace dockmine;

std::vector<std::uint64_t> make_keys(std::size_t n, std::size_t distinct) {
  // Zipf-ish duplication pattern like real content keys.
  util::Rng rng(7);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(1 + rng.uniform(distinct));
  }
  return keys;
}

void BM_FlatMapCount(benchmark::State& state) {
  const auto keys = make_keys(1 << 20, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    util::FlatMap64<std::uint64_t> map(keys.size() / 8);
    for (std::uint64_t key : keys) ++map[key];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapCount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 19);

void BM_UnorderedMapCount(benchmark::State& state) {
  const auto keys = make_keys(1 << 20, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    map.reserve(keys.size() / 8);
    for (std::uint64_t key : keys) ++map[key];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_UnorderedMapCount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 19);

void BM_FileDedupIndexAdd(benchmark::State& state) {
  const auto keys = make_keys(1 << 20, 1 << 16);
  for (auto _ : state) {
    dedup::FileDedupIndex index(1 << 14);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      index.add(keys[i], 1000, filetype::Type::kAsciiText,
                static_cast<std::uint32_t>(i & 1023));
    }
    benchmark::DoNotOptimize(index.distinct_contents());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FileDedupIndexAdd);

}  // namespace

BENCHMARK_MAIN();
