// Fig. 7 — maximum directory depth per layer (CDF + histogram with the
// paper's mode at depth 3).
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& depth = ctx.stats.layer_depth;

  stats::LinearHistogram hist(0, 20, 20);
  for (double v : depth.sorted_samples()) hist.add(v);

  core::FigureTable table("Fig. 7", "Layer directory depth");
  table.row("median depth", "< 4", core::fmt_count(depth.median()))
      .row("p90 depth", "< 10", core::fmt_count(depth.p90()))
      .row("modal depth", "3 (313k layers)",
           core::fmt_count(static_cast<double>(hist.mode_bucket())));
  table.print(std::cout);
  core::print_cdf(std::cout, "max directory depth", depth, core::fmt_count);
  core::print_histogram(std::cout, "depth histogram (Fig. 7b)", hist,
                        core::fmt_count);
  return 0;
}
