// §III totals — the end-to-end pipeline (crawl -> download -> analyze ->
// dedup) in bytes mode, reproducing the paper's methodology numbers:
// 634,412 raw hits -> 457,627 repos; 355,319 downloaded / 111,384 failed
// (13% auth, 87% no latest); 1,792,609 layers; 47 TB compressed.
//
// Part two compares staged-barrier against streamed execution under a
// throttled registry (CostModel service times become real sleeps), showing
// the overlap win and the bounded blob residency of the streaming hand-off.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/json/json.h"
#include "dockmine/util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dockmine;
  const bench::MetricsScope metrics(argc, argv);
  core::PipelineOptions options;
  // Bytes mode materializes real tars: run at a reduced scale with the
  // light calibration (full pipeline logic, small layers) so the bench
  // finishes in seconds. The §III ratios being reproduced are
  // calibration-independent (failure classes, crawl duplication,
  // unique-layer economy).
  options.calibration = synth::Calibration::light();
  options.scale = core::scale_from_env(synth::Scale{400, 20170530});
  options.download_workers = 4;
  options.analyze_workers = 2;
  options.gzip_level = 1;

  std::cout << "end-to-end pipeline at " << options.scale.repositories
            << " repositories (DOCKMINE_REPOS overrides)\n";
  util::Stopwatch clock;
  auto run = core::run_end_to_end(options);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const auto& r = run.value();
  const double wall = clock.seconds();

  const double fail_total = static_cast<double>(
      r.download.failed_auth + r.download.failed_no_tag);
  core::FigureTable table("§III", "End-to-end pipeline totals");
  table
      .row("raw search hits / distinct",
           "634,412 / 457,627 (1.386x)",
           core::fmt_ratio(static_cast<double>(r.crawl.raw_hits) /
                               static_cast<double>(r.crawl.repositories.size()),
                           3))
      .row("download failure rate", "23.9%",
           core::fmt_pct(fail_total /
                         static_cast<double>(r.download.attempted)))
      .row("failures needing auth", "13%",
           core::fmt_pct(static_cast<double>(r.download.failed_auth) /
                         fail_total))
      .row("failures missing latest", "87%",
           core::fmt_pct(static_cast<double>(r.download.failed_no_tag) /
                         fail_total))
      .row("unique layers per image",
           "1.79M / 355k = 5.0",
           core::fmt_ratio(static_cast<double>(r.download.layers_fetched) /
                               static_cast<double>(r.download.succeeded),
                           2))
      .row("layer transfers saved by unique-layer dedup", "(substantial)",
           core::fmt_pct(static_cast<double>(r.download.layers_deduped) /
                         static_cast<double>(r.download.layers_deduped +
                                             r.download.layers_fetched)));
  table.print(std::cout);

  std::printf(
      "\n  downloaded %llu images (%s compressed) in %.2fs wall;\n"
      "  analyzer profiled %zu unique layers; file dedup: %s unique\n"
      "  simulated registry service time: %.1f s\n",
      static_cast<unsigned long long>(r.download.succeeded),
      util::format_bytes(r.download.bytes_downloaded).c_str(), wall,
      r.layer_profiles.size(),
      r.file_index
          ? core::fmt_pct(r.file_index->totals().unique_file_fraction()).c_str()
          : "n/a",
      r.service.simulated_ms / 1000.0);

  // --- staged vs streamed under a throttled registry -----------------------
  // The in-process service answers in microseconds, which would hide the
  // overlap the streaming pipeline exists for; network_scale turns the
  // CostModel's modeled service time into real sleeps.
  const char* scale_env = std::getenv("DOCKMINE_NET_SCALE");
  core::PipelineOptions cmp = options;
  cmp.scale.repositories = std::min<std::uint64_t>(
      cmp.scale.repositories, 200);
  cmp.network_scale = scale_env ? std::atof(scale_env) : 0.3;
  cmp.queue_depth = 16;
  // Both modes get the same worker budget; with download and analysis time
  // roughly balanced, the staged barrier pays D + A while the streamed
  // pipeline pays ~max(D, A).
  cmp.download_workers = 4;
  cmp.analyze_workers = 4;

  cmp.mode = core::ExecutionMode::kStaged;
  auto staged = core::run_end_to_end(cmp);

  cmp.mode = core::ExecutionMode::kStreamed;
  auto streamed = core::run_end_to_end(cmp);

  if (!staged.ok() || !streamed.ok()) {
    std::fprintf(stderr, "mode comparison failed\n");
    return 1;
  }
  // Compare the pipeline proper (crawl -> download -> analyze -> dedup);
  // both runs also pay an identical registry-materialization setup cost
  // that a real crawl would not, which is excluded here.
  const double staged_wall = staged.value().pipeline_seconds;
  const double streamed_wall = streamed.value().pipeline_seconds;
  const auto& stream = streamed.value().stream;
  const bool identical = core::pipeline_report_json(staged.value()).dump() ==
                         core::pipeline_report_json(streamed.value()).dump();

  std::printf(
      "\n  staged vs streamed (%llu repos, network_scale=%.3g, "
      "DOCKMINE_NET_SCALE overrides):\n"
      "    staged    %.2fs wall  (download barrier, then analyze)\n"
      "    streamed  %.2fs wall  (bounded queue, depth %llu)\n"
      "    speedup   %.2fx  (target >= 1.3x)\n"
      "    queue peak residency %llu / %llu blobs; producer stalls %llu\n"
      "    injected network stall %.1fs; reports byte-identical: %s\n",
      static_cast<unsigned long long>(cmp.scale.repositories),
      cmp.network_scale, staged_wall, streamed_wall,
      static_cast<unsigned long long>(stream.queue_capacity),
      staged_wall / streamed_wall,
      static_cast<unsigned long long>(stream.queue_peak),
      static_cast<unsigned long long>(stream.queue_capacity),
      static_cast<unsigned long long>(stream.producer_stalls),
      streamed.value().throttled_ms / 1000.0, identical ? "yes" : "NO");

  // Machine-readable summary for CI trend tracking and tooling
  // (DOCKMINE_BENCH_JSON overrides the output path).
  {
    auto doc = json::Value::object();
    doc.set("bench", "pipeline_end2end");
    doc.set("repositories",
            static_cast<std::uint64_t>(options.scale.repositories));
    doc.set("seed", options.scale.seed);

    auto full = json::Value::object();
    full.set("wall_seconds", wall);
    full.set("pipeline_seconds", r.pipeline_seconds);
    full.set("images_downloaded", r.download.succeeded);
    full.set("bytes_downloaded", r.download.bytes_downloaded);
    full.set("unique_layers", static_cast<std::uint64_t>(
                                  r.layer_profiles.size()));
    full.set("unique_file_fraction",
             r.file_index ? r.file_index->totals().unique_file_fraction()
                          : 0.0);
    doc.set("full_run", std::move(full));

    auto modes = json::Value::object();
    modes.set("repositories",
              static_cast<std::uint64_t>(cmp.scale.repositories));
    modes.set("network_scale", cmp.network_scale);
    modes.set("staged_seconds", staged_wall);
    modes.set("streamed_seconds", streamed_wall);
    modes.set("speedup", staged_wall / streamed_wall);
    modes.set("queue_capacity", stream.queue_capacity);
    modes.set("queue_peak", stream.queue_peak);
    modes.set("producer_stalls", stream.producer_stalls);
    modes.set("reports_identical", identical);
    doc.set("mode_comparison", std::move(modes));

    const char* json_path = std::getenv("DOCKMINE_BENCH_JSON");
    const std::string out_path =
        json_path != nullptr ? json_path : "BENCH_pipeline.json";
    std::ofstream out(out_path, std::ios::trunc);
    if (out) {
      out << doc.dump_pretty() << "\n";
      std::printf("\n  wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    }
  }
  return 0;
}
