// §III totals — the end-to-end pipeline (crawl -> download -> analyze ->
// dedup) in bytes mode, reproducing the paper's methodology numbers:
// 634,412 raw hits -> 457,627 repos; 355,319 downloaded / 111,384 failed
// (13% auth, 87% no latest); 1,792,609 layers; 47 TB compressed.
//
// Part two compares staged-barrier against streamed execution under a
// throttled registry (CostModel service times become real sleeps), showing
// the overlap win and the bounded blob residency of the streaming hand-off.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/json/json.h"
#include "dockmine/obs/critical_path.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/trace_export.h"
#include "dockmine/util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dockmine;
  const bench::MetricsScope metrics(argc, argv);
  core::PipelineOptions options;
  // Bytes mode materializes real tars: run at a reduced scale with the
  // light calibration (full pipeline logic, small layers) so the bench
  // finishes in seconds. The §III ratios being reproduced are
  // calibration-independent (failure classes, crawl duplication,
  // unique-layer economy).
  options.calibration = synth::Calibration::light();
  options.scale = core::scale_from_env(synth::Scale{400, 20170530});
  options.download_workers = 4;
  options.analyze_workers = 2;
  options.gzip_level = 1;

  std::cout << "end-to-end pipeline at " << options.scale.repositories
            << " repositories (DOCKMINE_REPOS overrides)\n";
  util::Stopwatch clock;
  auto run = core::run_end_to_end(options);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const auto& r = run.value();
  const double wall = clock.seconds();

  const double fail_total = static_cast<double>(
      r.download.failed_auth + r.download.failed_no_tag);
  core::FigureTable table("§III", "End-to-end pipeline totals");
  table
      .row("raw search hits / distinct",
           "634,412 / 457,627 (1.386x)",
           core::fmt_ratio(static_cast<double>(r.crawl.raw_hits) /
                               static_cast<double>(r.crawl.repositories.size()),
                           3))
      .row("download failure rate", "23.9%",
           core::fmt_pct(fail_total /
                         static_cast<double>(r.download.attempted)))
      .row("failures needing auth", "13%",
           core::fmt_pct(static_cast<double>(r.download.failed_auth) /
                         fail_total))
      .row("failures missing latest", "87%",
           core::fmt_pct(static_cast<double>(r.download.failed_no_tag) /
                         fail_total))
      .row("unique layers per image",
           "1.79M / 355k = 5.0",
           core::fmt_ratio(static_cast<double>(r.download.layers_fetched) /
                               static_cast<double>(r.download.succeeded),
                           2))
      .row("layer transfers saved by unique-layer dedup", "(substantial)",
           core::fmt_pct(static_cast<double>(r.download.layers_deduped) /
                         static_cast<double>(r.download.layers_deduped +
                                             r.download.layers_fetched)));
  table.print(std::cout);

  std::printf(
      "\n  downloaded %llu images (%s compressed) in %.2fs wall;\n"
      "  analyzer profiled %zu unique layers; file dedup: %s unique\n"
      "  simulated registry service time: %.1f s\n",
      static_cast<unsigned long long>(r.download.succeeded),
      util::format_bytes(r.download.bytes_downloaded).c_str(), wall,
      r.layer_profiles.size(),
      r.file_index
          ? core::fmt_pct(r.file_index->totals().unique_file_fraction()).c_str()
          : "n/a",
      r.service.simulated_ms / 1000.0);

  // --- staged vs streamed under a throttled registry -----------------------
  // The in-process service answers in microseconds, which would hide the
  // overlap the streaming pipeline exists for; network_scale turns the
  // CostModel's modeled service time into real sleeps.
  const char* scale_env = std::getenv("DOCKMINE_NET_SCALE");
  core::PipelineOptions cmp = options;
  cmp.scale.repositories = std::min<std::uint64_t>(
      cmp.scale.repositories, 200);
  cmp.network_scale = scale_env ? std::atof(scale_env) : 0.3;
  cmp.queue_depth = 16;
  // Both modes get the same worker budget; with download and analysis time
  // roughly balanced, the staged barrier pays D + A while the streamed
  // pipeline pays ~max(D, A).
  cmp.download_workers = 4;
  cmp.analyze_workers = 4;

  cmp.mode = core::ExecutionMode::kStaged;
  auto staged = core::run_end_to_end(cmp);

  cmp.mode = core::ExecutionMode::kStreamed;
  auto streamed = core::run_end_to_end(cmp);

  if (!staged.ok() || !streamed.ok()) {
    std::fprintf(stderr, "mode comparison failed\n");
    return 1;
  }
  // Compare the pipeline proper (crawl -> download -> analyze -> dedup);
  // both runs also pay an identical registry-materialization setup cost
  // that a real crawl would not, which is excluded here.
  const double staged_wall = staged.value().pipeline_seconds;
  const double streamed_wall = streamed.value().pipeline_seconds;
  const auto& stream = streamed.value().stream;
  const bool identical = core::pipeline_report_json(staged.value()).dump() ==
                         core::pipeline_report_json(streamed.value()).dump();

  std::printf(
      "\n  staged vs streamed (%llu repos, network_scale=%.3g, "
      "DOCKMINE_NET_SCALE overrides):\n"
      "    staged    %.2fs wall  (download barrier, then analyze)\n"
      "    streamed  %.2fs wall  (bounded queue, depth %llu)\n"
      "    speedup   %.2fx  (target >= 1.3x)\n"
      "    queue peak residency %llu / %llu blobs; producer stalls %llu\n"
      "    injected network stall %.1fs; reports byte-identical: %s\n",
      static_cast<unsigned long long>(cmp.scale.repositories),
      cmp.network_scale, staged_wall, streamed_wall,
      static_cast<unsigned long long>(stream.queue_capacity),
      staged_wall / streamed_wall,
      static_cast<unsigned long long>(stream.queue_peak),
      static_cast<unsigned long long>(stream.queue_capacity),
      static_cast<unsigned long long>(stream.producer_stalls),
      streamed.value().throttled_ms / 1000.0, identical ? "yes" : "NO");

  // --- event-level tracing: overhead guard + trace.json ---------------------
  // Re-run the streamed comparison with the trace journal recording every
  // download/analyze/queue-wait event. Two things come out of it: the
  // journal-on overhead ratio against the journal-off streamed run above
  // (guarded against the stated bound), and a Chrome/Perfetto trace.json of
  // the run plus its critical-path decomposition.
  constexpr double kTraceOverheadBound = 1.25;
  double traced_wall = 0.0;
  bool traced_identical = false;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  obs::CriticalPathReport crit;
  json::Value trace_doc;
  {
    // Journal recording needs obs on; restore the caller's choice after
    // (and do NOT reset_all — that would wipe a --metrics accumulation).
    const bool was_enabled = obs::enabled();
    obs::set_enabled(true);
    obs::TraceJournal::global().reset();
    obs::set_journal_enabled(true);
    auto traced = core::run_end_to_end(cmp);
    obs::set_journal_enabled(false);
    obs::set_enabled(was_enabled);
    if (!traced.ok()) {
      std::fprintf(stderr, "traced run failed: %s\n",
                   traced.error().to_string().c_str());
      return 1;
    }
    traced_wall = traced.value().pipeline_seconds;
    traced_identical =
        core::pipeline_report_json(traced.value()).dump() ==
        core::pipeline_report_json(streamed.value()).dump();
    const auto events = obs::TraceJournal::global().snapshot();
    trace_recorded = obs::TraceJournal::global().recorded();
    trace_dropped = obs::TraceJournal::global().dropped();
    crit = obs::critical_path(events);
    trace_doc = obs::trace_to_json(events, trace_recorded, trace_dropped);
  }
  const double overhead = streamed_wall > 0.0 ? traced_wall / streamed_wall
                                              : 1.0;
  std::printf(
      "\n  event-level tracing (streamed re-run, journal on):\n"
      "    traced    %.2fs wall  (%.2fx of untraced; bound %.2fx %s)\n"
      "    journal   %llu events recorded, %llu dropped;"
      " report byte-identical to untraced: %s\n",
      traced_wall, overhead, kTraceOverheadBound,
      overhead <= kTraceOverheadBound ? "OK" : "EXCEEDED",
      static_cast<unsigned long long>(trace_recorded),
      static_cast<unsigned long long>(trace_dropped),
      traced_identical ? "yes" : "NO");
  if (crit.root_wall_ms > 0.0) {
    std::printf("    critical path of 'pipeline' (%.2f ms wall, %.1f%% "
                "attributed):\n",
                crit.root_wall_ms,
                100.0 * crit.attributed_ms / crit.root_wall_ms);
    std::size_t shown = 0;
    for (const auto& entry : crit.entries) {
      if (++shown > 5) break;
      std::printf("      %-20s %10.3f ms  (%5.1f%%, %llu segments)\n",
                  entry.name.c_str(), entry.total_ms,
                  100.0 * entry.total_ms / crit.root_wall_ms,
                  static_cast<unsigned long long>(entry.segments));
    }
    std::printf("      %-20s %10.3f ms  (%5.1f%%)\n", "(root self)",
                crit.root_self_ms,
                100.0 * crit.root_self_ms / crit.root_wall_ms);
  }
  {
    const char* trace_path_env = std::getenv("DOCKMINE_TRACE_JSON");
    const std::string trace_path =
        trace_path_env != nullptr ? trace_path_env : "trace.json";
    std::ofstream out(trace_path, std::ios::trunc);
    if (out) {
      out << trace_doc.dump() << "\n";
      std::printf("    wrote %s (chrome://tracing, ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", trace_path.c_str());
    }
  }

  // Machine-readable summary for CI trend tracking and tooling
  // (DOCKMINE_BENCH_JSON overrides the output path).
  {
    auto doc = json::Value::object();
    doc.set("bench", "pipeline_end2end");
    doc.set("repositories",
            static_cast<std::uint64_t>(options.scale.repositories));
    doc.set("seed", options.scale.seed);

    auto full = json::Value::object();
    full.set("wall_seconds", wall);
    full.set("pipeline_seconds", r.pipeline_seconds);
    full.set("images_downloaded", r.download.succeeded);
    full.set("bytes_downloaded", r.download.bytes_downloaded);
    full.set("unique_layers", static_cast<std::uint64_t>(
                                  r.layer_profiles.size()));
    full.set("unique_file_fraction",
             r.file_index ? r.file_index->totals().unique_file_fraction()
                          : 0.0);
    doc.set("full_run", std::move(full));

    auto modes = json::Value::object();
    modes.set("repositories",
              static_cast<std::uint64_t>(cmp.scale.repositories));
    modes.set("network_scale", cmp.network_scale);
    modes.set("staged_seconds", staged_wall);
    modes.set("streamed_seconds", streamed_wall);
    modes.set("speedup", staged_wall / streamed_wall);
    modes.set("queue_capacity", stream.queue_capacity);
    modes.set("queue_peak", stream.queue_peak);
    modes.set("producer_stalls", stream.producer_stalls);
    modes.set("reports_identical", identical);
    doc.set("mode_comparison", std::move(modes));

    auto trace = json::Value::object();
    trace.set("traced_seconds", traced_wall);
    trace.set("untraced_seconds", streamed_wall);
    trace.set("overhead_ratio", overhead);
    trace.set("overhead_bound", kTraceOverheadBound);
    trace.set("within_bound", overhead <= kTraceOverheadBound);
    trace.set("events_recorded", trace_recorded);
    trace.set("events_dropped", trace_dropped);
    trace.set("report_identical", traced_identical);
    trace.set("critical_path", obs::to_json(crit));
    doc.set("trace", std::move(trace));

    const char* json_path = std::getenv("DOCKMINE_BENCH_JSON");
    const std::string out_path =
        json_path != nullptr ? json_path : "BENCH_pipeline.json";
    std::ofstream out(out_path, std::ios::trunc);
    if (out) {
      out << doc.dump_pretty() << "\n";
      std::printf("\n  wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    }
  }
  return 0;
}
