// §III totals — the end-to-end pipeline (crawl -> download -> analyze ->
// dedup) in bytes mode, reproducing the paper's methodology numbers:
// 634,412 raw hits -> 457,627 repos; 355,319 downloaded / 111,384 failed
// (13% auth, 87% no latest); 1,792,609 layers; 47 TB compressed.
#include <cstdio>

#include "common.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dockmine;
  const bench::MetricsScope metrics(argc, argv);
  core::PipelineOptions options;
  // Bytes mode materializes real tars: run at a reduced scale with the
  // light calibration (full pipeline logic, small layers) so the bench
  // finishes in seconds. The §III ratios being reproduced are
  // calibration-independent (failure classes, crawl duplication,
  // unique-layer economy).
  options.calibration = synth::Calibration::light();
  options.scale = core::scale_from_env(synth::Scale{400, 20170530});
  options.download_workers = 4;
  options.analyze_workers = 2;
  options.gzip_level = 1;

  std::cout << "end-to-end pipeline at " << options.scale.repositories
            << " repositories (DOCKMINE_REPOS overrides)\n";
  util::Stopwatch clock;
  auto run = core::run_end_to_end(options);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const auto& r = run.value();
  const double wall = clock.seconds();

  const double fail_total = static_cast<double>(
      r.download.failed_auth + r.download.failed_no_tag);
  core::FigureTable table("§III", "End-to-end pipeline totals");
  table
      .row("raw search hits / distinct",
           "634,412 / 457,627 (1.386x)",
           core::fmt_ratio(static_cast<double>(r.crawl.raw_hits) /
                               static_cast<double>(r.crawl.repositories.size()),
                           3))
      .row("download failure rate", "23.9%",
           core::fmt_pct(fail_total /
                         static_cast<double>(r.download.attempted)))
      .row("failures needing auth", "13%",
           core::fmt_pct(static_cast<double>(r.download.failed_auth) /
                         fail_total))
      .row("failures missing latest", "87%",
           core::fmt_pct(static_cast<double>(r.download.failed_no_tag) /
                         fail_total))
      .row("unique layers per image",
           "1.79M / 355k = 5.0",
           core::fmt_ratio(static_cast<double>(r.download.layers_fetched) /
                               static_cast<double>(r.download.succeeded),
                           2))
      .row("layer transfers saved by unique-layer dedup", "(substantial)",
           core::fmt_pct(static_cast<double>(r.download.layers_deduped) /
                         static_cast<double>(r.download.layers_deduped +
                                             r.download.layers_fetched)));
  table.print(std::cout);

  std::printf(
      "\n  downloaded %llu images (%s compressed) in %.2fs wall;\n"
      "  analyzer profiled %zu unique layers; file dedup: %s unique\n"
      "  simulated registry service time: %.1f s\n",
      static_cast<unsigned long long>(r.download.succeeded),
      util::format_bytes(r.download.bytes_downloaded).c_str(), wall,
      r.layer_profiles.size(),
      r.file_index
          ? core::fmt_pct(r.file_index->totals().unique_file_fraction()).c_str()
          : "n/a",
      r.service.simulated_ms / 1000.0);
  return 0;
}
