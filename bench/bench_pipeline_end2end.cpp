// §III totals — the end-to-end pipeline (crawl -> download -> analyze ->
// dedup) in bytes mode, reproducing the paper's methodology numbers:
// 634,412 raw hits -> 457,627 repos; 355,319 downloaded / 111,384 failed
// (13% auth, 87% no latest); 1,792,609 layers; 47 TB compressed.
//
// Part two compares staged-barrier against streamed execution under a
// throttled registry (CostModel service times become real sleeps), showing
// the overlap win and the bounded blob residency of the streaming hand-off.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "common.h"
#include "dockmine/art/art.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/json/json.h"
#include "dockmine/mem/arena.h"
#include "dockmine/obs/critical_path.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/trace_export.h"
#include "dockmine/shard/store.h"
#include "dockmine/tar/reader.h"
#include "dockmine/tar/writer.h"
#include "dockmine/util/rng.h"
#include "dockmine/util/stopwatch.h"

namespace {

using namespace dockmine;

/// A synthetic layer tar shaped like a package install: nested directories,
/// dozens of files each, paths long enough to be heap-allocated strings.
std::string make_walk_layer(std::uint64_t seed, std::size_t dirs,
                            std::size_t files_per_dir) {
  util::Rng rng(seed);
  tar::Writer writer;
  for (std::size_t d = 0; d < dirs; ++d) {
    const std::string dir = "usr/lib/packages/vendor-" +
                            std::to_string(rng.uniform(64)) + "/component-" +
                            std::to_string(d);
    writer.add_directory(dir + "/");
    for (std::size_t f = 0; f < files_per_dir; ++f) {
      writer.add_file(dir + "/module-" + std::to_string(f) + ".so",
                      "\x7f" "ELFstub-content-bytes");
    }
  }
  return writer.finish();
}

/// The pre-PR analyzer walk, verbatim idiom: a fresh Entry per next() call
/// (every header decode allocates its strings) and a heap std::map keyed by
/// owned std::string copies for the directory profile.
std::uint64_t legacy_walk(std::string_view tar_bytes, std::uint64_t& dirs_out) {
  tar::Reader reader(tar_bytes);
  std::map<std::string, std::uint64_t, std::less<>> dir_files;
  std::uint64_t files = 0;
  for (;;) {
    auto got = reader.next();
    if (!got.ok() || !got.value().has_value()) break;
    const tar::Entry& entry = *got.value();
    std::string_view path = entry.header.name;
    if (entry.is_directory()) {
      while (!path.empty() && path.back() == '/') path.remove_suffix(1);
      if (auto it = dir_files.find(path); it == dir_files.end()) {
        dir_files.emplace(std::string(path), 0);
      }
      continue;
    }
    if (!entry.is_file()) continue;
    ++files;
    const std::size_t slash = path.rfind('/');
    const std::string_view parent =
        slash == std::string_view::npos ? std::string_view(".")
                                        : path.substr(0, slash);
    if (auto it = dir_files.find(parent); it != dir_files.end()) {
      ++it->second;
    } else {
      dir_files.emplace(std::string(parent), 1);
    }
  }
  dirs_out = dir_files.size();
  return files;
}

/// The post-PR walk, mirroring `LayerAnalyzer`'s arena path: one reused
/// Entry (header strings keep their capacity), an arena-backed map whose
/// keys are interned into per-layer scratch, and the last-parent memo that
/// exploits tars listing a directory's files consecutively.
std::uint64_t arena_walk(std::string_view tar_bytes, mem::Arena& scratch,
                         std::uint64_t& dirs_out) {
  using Alloc =
      mem::ArenaAllocator<std::pair<const std::string_view, std::uint64_t>>;
  std::map<std::string_view, std::uint64_t, std::less<>, Alloc> dir_files{
      std::less<>{}, Alloc(scratch)};
  std::uint64_t files = 0;
  std::string_view last_parent;
  std::uint64_t* last_count = nullptr;
  tar::Reader reader(tar_bytes);
  const auto status = reader.for_each([&](const tar::Entry& entry) {
    std::string_view path = entry.header.name;
    if (entry.is_directory()) {
      while (!path.empty() && path.back() == '/') path.remove_suffix(1);
      if (auto it = dir_files.find(path); it == dir_files.end()) {
        dir_files.emplace(scratch.intern(path), 0);
      }
      return;
    }
    if (!entry.is_file()) return;
    ++files;
    const std::size_t slash = path.rfind('/');
    const std::string_view parent =
        slash == std::string_view::npos ? std::string_view(".")
                                        : path.substr(0, slash);
    if (last_count != nullptr && parent == last_parent) {
      ++*last_count;
    } else {
      auto it = dir_files.find(parent);
      if (it != dir_files.end()) {
        ++it->second;
      } else {
        it = dir_files.emplace(scratch.intern(parent), 1).first;
      }
      last_parent = it->first;
      last_count = &it->second;
    }
  });
  (void)status;
  dirs_out = dir_files.size();
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dockmine;
  const bench::MetricsScope metrics(argc, argv);
  core::PipelineOptions options;
  // Bytes mode materializes real tars: run at a reduced scale with the
  // light calibration (full pipeline logic, small layers) so the bench
  // finishes in seconds. The §III ratios being reproduced are
  // calibration-independent (failure classes, crawl duplication,
  // unique-layer economy).
  options.calibration = synth::Calibration::light();
  options.scale = core::scale_from_env(synth::Scale{400, 20170530});
  options.download_workers = 4;
  options.analyze_workers = 2;
  options.gzip_level = 1;

  std::cout << "end-to-end pipeline at " << options.scale.repositories
            << " repositories (DOCKMINE_REPOS overrides)\n";
  // --- hot-path memory: arena tar walk + ART content index -----------------
  // Two microbenches over the structures this pipeline hammers per layer:
  // the analyzer's tar walk / directory profile (legacy heap idiom vs the
  // per-layer arena path) and the sharded dedup store (sorted-map freeze vs
  // the ART whose in-order walk needs no sort).
  constexpr double kWalkSpeedupTarget = 1.5;
  double legacy_fps = 0.0, arena_fps = 0.0;
  std::uint64_t walk_files = 0, walk_dirs = 0, arena_high_water = 0;
  {
    constexpr std::size_t kLayers = 8;
    constexpr std::size_t kDirs = 120;
    constexpr std::size_t kFilesPerDir = 16;
    constexpr int kWarmup = 2;
    constexpr int kReps = 12;
    std::vector<std::string> layers;
    layers.reserve(kLayers);
    for (std::size_t i = 0; i < kLayers; ++i) {
      layers.push_back(make_walk_layer(0xA11E5 + i, kDirs, kFilesPerDir));
    }

    std::uint64_t dirs = 0;
    for (int w = 0; w < kWarmup; ++w) {
      for (const auto& layer : layers) legacy_walk(layer, dirs);
    }
    // Best-of-reps: each rep is timed on its own and the fastest wins, so a
    // scheduler hiccup in one rep cannot sink the gate — both paths get the
    // same treatment, and the ratio is what the gate cares about.
    double legacy_best = 0.0;
    std::uint64_t legacy_files = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      util::Stopwatch clock;
      for (const auto& layer : layers) {
        legacy_files += legacy_walk(layer, dirs);
        walk_dirs = dirs;
      }
      const double s = clock.seconds();
      if (legacy_best == 0.0 || s < legacy_best) legacy_best = s;
    }

    mem::Arena scratch;
    for (int w = 0; w < kWarmup; ++w) {
      for (const auto& layer : layers) {
        arena_walk(layer, scratch, dirs);
        scratch.reset();
      }
    }
    double arena_best = 0.0;
    std::uint64_t arena_files = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      util::Stopwatch clock;
      for (const auto& layer : layers) {
        arena_files += arena_walk(layer, scratch, dirs);
        scratch.reset();
      }
      const double s = clock.seconds();
      if (arena_best == 0.0 || s < arena_best) arena_best = s;
    }
    arena_high_water = scratch.high_water();

    walk_files = legacy_files / (kReps * kLayers);
    const double rep_files = static_cast<double>(legacy_files) / kReps;
    legacy_fps = rep_files / legacy_best;
    arena_fps = rep_files / arena_best;
    if (legacy_files != arena_files) {
      std::fprintf(stderr, "walk mismatch: legacy %llu vs arena %llu files\n",
                   static_cast<unsigned long long>(legacy_files),
                   static_cast<unsigned long long>(arena_files));
      return 1;
    }
  }
  const double walk_speedup = legacy_fps > 0.0 ? arena_fps / legacy_fps : 0.0;
  std::printf(
      "\n  analyzer hot path (tar walk + dir profile, %llu files / %llu dirs"
      " per layer):\n"
      "    legacy    %11.0f files/s  (fresh-Entry reader, heap string map)\n"
      "    arena     %11.0f files/s  (reused Entry, per-layer arena map)\n"
      "    speedup   %.2fx  (target >= %.1fx %s)\n"
      "    arena high water %llu bytes/layer (steady state: zero heap"
      " traffic)\n",
      static_cast<unsigned long long>(walk_files),
      static_cast<unsigned long long>(walk_dirs), legacy_fps, arena_fps,
      walk_speedup, kWalkSpeedupTarget,
      walk_speedup >= kWalkSpeedupTarget ? "OK" : "MISSED",
      static_cast<unsigned long long>(arena_high_water));

  // Sorted-map vs ART shard store: same observation stream, measure the
  // upsert phase and the freeze (collect_sorted) phase. The ART drain is a
  // linear in-order walk — no sort — which is the design point that deleted
  // std::sort from the spill path.
  constexpr std::size_t kIndexKeys = 300000;
  double map_insert_ms = 0.0, map_drain_ms = 0.0;
  double art_insert_ms = 0.0, art_drain_ms = 0.0;
  art::Stats art_census;
  double art_bytes_per_key = 0.0;
  {
    util::Rng rng(0xC0FFEE);
    std::vector<std::uint64_t> keys(kIndexKeys);
    // ~25% repeated keys exercise the merge path like real dedup traffic.
    for (auto& key : keys) {
      key = (rng.uniform01() < 0.25 && &key != keys.data())
                ? keys[rng.uniform(static_cast<std::uint64_t>(
                      &key - keys.data()))]
                : rng() | 1;
    }
    dedup::ContentEntry observation;
    observation.count = 1;
    observation.size = 4096;
    observation.type = filetype::Type::kAsciiText;

    auto drive = [&](shard::IndexBackend backend, double& insert_ms,
                     double& drain_ms) {
      shard::ShardStore store(backend, 1 << 12);
      util::Stopwatch insert_clock;
      for (std::uint64_t key : keys) store.merge(key, observation);
      insert_ms = insert_clock.seconds() * 1000.0;
      std::vector<shard::RunEntry> entries;
      util::Stopwatch drain_clock;
      store.collect_sorted(entries);
      drain_ms = drain_clock.seconds() * 1000.0;
      if (backend == shard::IndexBackend::kArt) {
        art_census = store.art_stats();
        art_bytes_per_key =
            static_cast<double>(store.memory_bytes()) /
            static_cast<double>(store.size());
      }
      return entries.size();
    };
    const std::size_t map_entries =
        drive(shard::IndexBackend::kMap, map_insert_ms, map_drain_ms);
    const std::size_t art_entries =
        drive(shard::IndexBackend::kArt, art_insert_ms, art_drain_ms);
    if (map_entries != art_entries) {
      std::fprintf(stderr, "index mismatch: map %zu vs art %zu entries\n",
                   map_entries, art_entries);
      return 1;
    }
    std::printf(
        "\n  shard content index (%zu observations, %zu distinct):\n"
        "    map   insert %8.1f ms   freeze %8.1f ms  (collect + std::sort)\n"
        "    art   insert %8.1f ms   freeze %8.1f ms  (in-order walk, no"
        " sort)\n"
        "    art census: %llu n4 / %llu n16 / %llu n48 / %llu n256 nodes,"
        " %.0f bytes/key\n",
        keys.size(), map_entries, map_insert_ms, map_drain_ms, art_insert_ms,
        art_drain_ms, static_cast<unsigned long long>(art_census.node4),
        static_cast<unsigned long long>(art_census.node16),
        static_cast<unsigned long long>(art_census.node48),
        static_cast<unsigned long long>(art_census.node256),
        art_bytes_per_key);
  }

  // Node16 key probe: the inner-loop byte search of every ART descent,
  // scalar linear scan vs the branchless SSE2 compare+movemask used by
  // Node::child. Same probe stream through both; the checksums must agree
  // (the art_test differential pins correctness, this pins the price).
  double probe_scalar_ms = 0.0, probe_simd_ms = 0.0;
  {
    constexpr std::size_t kProbeNodes = 4096;
    constexpr std::size_t kProbesPerNode = 64;
    constexpr int kProbeWarmup = 2;
    constexpr int kProbeReps = 12;
    struct ProbeNode {
      std::uint8_t keys[16];
      std::uint16_t count;
    };
    util::Rng rng(0xA27B5);
    std::vector<ProbeNode> nodes(kProbeNodes);
    std::vector<std::uint8_t> probes(kProbeNodes * kProbesPerNode);
    for (auto& node : nodes) {
      node.count = static_cast<std::uint16_t>(5 + rng.uniform(12));  // 5..16
      for (std::size_t k = 0; k < 16; ++k) {
        node.keys[k] = static_cast<std::uint8_t>(rng());
      }
    }
    // ~half the probes hit a stored key, half miss — real descents see both.
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const ProbeNode& node = nodes[i % kProbeNodes];
      probes[i] = (i & 1) ? node.keys[rng.uniform(node.count)]
                          : static_cast<std::uint8_t>(rng());
    }
    auto sweep = [&](auto&& find) {
      std::int64_t checksum = 0;
      for (std::size_t i = 0; i < probes.size(); ++i) {
        const ProbeNode& node = nodes[i % kProbeNodes];
        checksum += find(node.keys, node.count, probes[i]);
      }
      return checksum;
    };
    auto time_best = [&](auto&& find, std::int64_t& checksum) {
      for (int w = 0; w < kProbeWarmup; ++w) checksum = sweep(find);
      double best_ms = 0.0;
      for (int rep = 0; rep < kProbeReps; ++rep) {
        util::Stopwatch probe_clock;
        checksum = sweep(find);
        const double ms = probe_clock.seconds() * 1000.0;
        if (rep == 0 || ms < best_ms) best_ms = ms;
      }
      return best_ms;
    };
    std::int64_t scalar_sum = 0, simd_sum = 0;
    probe_scalar_ms = time_best(
        [](const std::uint8_t* keys, std::uint16_t count, std::uint8_t byte) {
          return art::detail::find_key_scalar(keys, count, byte);
        },
        scalar_sum);
    probe_simd_ms = time_best(
        [](const std::uint8_t* keys, std::uint16_t count, std::uint8_t byte) {
          return art::detail::find_key(keys, count, byte);
        },
        simd_sum);
    if (scalar_sum != simd_sum) {
      std::fprintf(stderr, "node16 probe mismatch: scalar %lld vs simd %lld\n",
                   static_cast<long long>(scalar_sum),
                   static_cast<long long>(simd_sum));
      return 1;
    }
    std::printf(
        "\n  art node16 probe (%zu probes, best of %d):\n"
        "    scalar %8.3f ms   simd %8.3f ms   speedup %.2fx%s\n",
        probes.size(), kProbeReps, probe_scalar_ms, probe_simd_ms,
        probe_simd_ms > 0.0 ? probe_scalar_ms / probe_simd_ms : 0.0,
#if defined(__SSE2__)
        "");
#else
        "  (no SSE2: simd path is the scalar fallback)");
#endif
  }

  util::Stopwatch clock;
  auto run = core::run_end_to_end(options);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const auto& r = run.value();
  const double wall = clock.seconds();

  const double fail_total = static_cast<double>(
      r.download.failed_auth + r.download.failed_no_tag);
  core::FigureTable table("§III", "End-to-end pipeline totals");
  table
      .row("raw search hits / distinct",
           "634,412 / 457,627 (1.386x)",
           core::fmt_ratio(static_cast<double>(r.crawl.raw_hits) /
                               static_cast<double>(r.crawl.repositories.size()),
                           3))
      .row("download failure rate", "23.9%",
           core::fmt_pct(fail_total /
                         static_cast<double>(r.download.attempted)))
      .row("failures needing auth", "13%",
           core::fmt_pct(static_cast<double>(r.download.failed_auth) /
                         fail_total))
      .row("failures missing latest", "87%",
           core::fmt_pct(static_cast<double>(r.download.failed_no_tag) /
                         fail_total))
      .row("unique layers per image",
           "1.79M / 355k = 5.0",
           core::fmt_ratio(static_cast<double>(r.download.layers_fetched) /
                               static_cast<double>(r.download.succeeded),
                           2))
      .row("layer transfers saved by unique-layer dedup", "(substantial)",
           core::fmt_pct(static_cast<double>(r.download.layers_deduped) /
                         static_cast<double>(r.download.layers_deduped +
                                             r.download.layers_fetched)));
  table.print(std::cout);

  std::printf(
      "\n  downloaded %llu images (%s compressed) in %.2fs wall;\n"
      "  analyzer profiled %zu unique layers; file dedup: %s unique\n"
      "  simulated registry service time: %.1f s\n",
      static_cast<unsigned long long>(r.download.succeeded),
      util::format_bytes(r.download.bytes_downloaded).c_str(), wall,
      r.layer_profiles.size(),
      r.file_index
          ? core::fmt_pct(r.file_index->totals().unique_file_fraction()).c_str()
          : "n/a",
      r.service.simulated_ms / 1000.0);

  // --- staged vs streamed under a throttled registry -----------------------
  // The in-process service answers in microseconds, which would hide the
  // overlap the streaming pipeline exists for; network_scale turns the
  // CostModel's modeled service time into real sleeps.
  const char* scale_env = std::getenv("DOCKMINE_NET_SCALE");
  core::PipelineOptions cmp = options;
  cmp.scale.repositories = std::min<std::uint64_t>(
      cmp.scale.repositories, 200);
  cmp.network_scale = scale_env ? std::atof(scale_env) : 0.3;
  cmp.queue_depth = 16;
  // Both modes get the same worker budget; with download and analysis time
  // roughly balanced, the staged barrier pays D + A while the streamed
  // pipeline pays ~max(D, A).
  cmp.download_workers = 4;
  cmp.analyze_workers = 4;

  cmp.mode = core::ExecutionMode::kStaged;
  auto staged = core::run_end_to_end(cmp);

  cmp.mode = core::ExecutionMode::kStreamed;
  auto streamed = core::run_end_to_end(cmp);

  if (!staged.ok() || !streamed.ok()) {
    std::fprintf(stderr, "mode comparison failed\n");
    return 1;
  }
  // Compare the pipeline proper (crawl -> download -> analyze -> dedup);
  // both runs also pay an identical registry-materialization setup cost
  // that a real crawl would not, which is excluded here.
  const double staged_wall = staged.value().pipeline_seconds;
  const double streamed_wall = streamed.value().pipeline_seconds;
  const auto& stream = streamed.value().stream;
  const bool identical = core::pipeline_report_json(staged.value()).dump() ==
                         core::pipeline_report_json(streamed.value()).dump();

  std::printf(
      "\n  staged vs streamed (%llu repos, network_scale=%.3g, "
      "DOCKMINE_NET_SCALE overrides):\n"
      "    staged    %.2fs wall  (download barrier, then analyze)\n"
      "    streamed  %.2fs wall  (bounded queue, depth %llu)\n"
      "    speedup   %.2fx  (target >= 1.3x)\n"
      "    queue peak residency %llu / %llu blobs; producer stalls %llu\n"
      "    injected network stall %.1fs; reports byte-identical: %s\n",
      static_cast<unsigned long long>(cmp.scale.repositories),
      cmp.network_scale, staged_wall, streamed_wall,
      static_cast<unsigned long long>(stream.queue_capacity),
      staged_wall / streamed_wall,
      static_cast<unsigned long long>(stream.queue_peak),
      static_cast<unsigned long long>(stream.queue_capacity),
      static_cast<unsigned long long>(stream.producer_stalls),
      streamed.value().throttled_ms / 1000.0, identical ? "yes" : "NO");

  // --- event-level tracing: overhead guard + trace.json ---------------------
  // Re-run the streamed comparison with the trace journal recording every
  // download/analyze/queue-wait event. Two things come out of it: the
  // journal-on overhead ratio against the journal-off streamed run above
  // (guarded against the stated bound), and a Chrome/Perfetto trace.json of
  // the run plus its critical-path decomposition.
  constexpr double kTraceOverheadBound = 1.25;
  double traced_wall = 0.0;
  bool traced_identical = false;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  obs::CriticalPathReport crit;
  json::Value trace_doc;
  {
    // Journal recording needs obs on; restore the caller's choice after
    // (and do NOT reset_all — that would wipe a --metrics accumulation).
    const bool was_enabled = obs::enabled();
    obs::set_enabled(true);
    obs::TraceJournal::global().reset();
    obs::set_journal_enabled(true);
    auto traced = core::run_end_to_end(cmp);
    obs::set_journal_enabled(false);
    obs::set_enabled(was_enabled);
    if (!traced.ok()) {
      std::fprintf(stderr, "traced run failed: %s\n",
                   traced.error().to_string().c_str());
      return 1;
    }
    traced_wall = traced.value().pipeline_seconds;
    traced_identical =
        core::pipeline_report_json(traced.value()).dump() ==
        core::pipeline_report_json(streamed.value()).dump();
    const auto events = obs::TraceJournal::global().snapshot();
    trace_recorded = obs::TraceJournal::global().recorded();
    trace_dropped = obs::TraceJournal::global().dropped();
    crit = obs::critical_path(events);
    trace_doc = obs::trace_to_json(events, trace_recorded, trace_dropped);
  }
  const double overhead = streamed_wall > 0.0 ? traced_wall / streamed_wall
                                              : 1.0;
  std::printf(
      "\n  event-level tracing (streamed re-run, journal on):\n"
      "    traced    %.2fs wall  (%.2fx of untraced; bound %.2fx %s)\n"
      "    journal   %llu events recorded, %llu dropped;"
      " report byte-identical to untraced: %s\n",
      traced_wall, overhead, kTraceOverheadBound,
      overhead <= kTraceOverheadBound ? "OK" : "EXCEEDED",
      static_cast<unsigned long long>(trace_recorded),
      static_cast<unsigned long long>(trace_dropped),
      traced_identical ? "yes" : "NO");
  if (crit.root_wall_ms > 0.0) {
    std::printf("    critical path of 'pipeline' (%.2f ms wall, %.1f%% "
                "attributed):\n",
                crit.root_wall_ms,
                100.0 * crit.attributed_ms / crit.root_wall_ms);
    std::size_t shown = 0;
    for (const auto& entry : crit.entries) {
      if (++shown > 5) break;
      std::printf("      %-20s %10.3f ms  (%5.1f%%, %llu segments)\n",
                  entry.name.c_str(), entry.total_ms,
                  100.0 * entry.total_ms / crit.root_wall_ms,
                  static_cast<unsigned long long>(entry.segments));
    }
    std::printf("      %-20s %10.3f ms  (%5.1f%%)\n", "(root self)",
                crit.root_self_ms,
                100.0 * crit.root_self_ms / crit.root_wall_ms);
  }
  {
    const char* trace_path_env = std::getenv("DOCKMINE_TRACE_JSON");
    const std::string trace_path =
        trace_path_env != nullptr ? trace_path_env : "trace.json";
    std::ofstream out(trace_path, std::ios::trunc);
    if (out) {
      out << trace_doc.dump() << "\n";
      std::printf("    wrote %s (chrome://tracing, ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", trace_path.c_str());
    }
  }

  // Machine-readable summary for CI trend tracking and tooling
  // (DOCKMINE_BENCH_JSON overrides the output path).
  {
    auto doc = json::Value::object();
    doc.set("bench", "pipeline_end2end");
    doc.set("repositories",
            static_cast<std::uint64_t>(options.scale.repositories));
    doc.set("seed", options.scale.seed);

    auto full = json::Value::object();
    full.set("wall_seconds", wall);
    full.set("pipeline_seconds", r.pipeline_seconds);
    full.set("images_downloaded", r.download.succeeded);
    full.set("bytes_downloaded", r.download.bytes_downloaded);
    full.set("unique_layers", static_cast<std::uint64_t>(
                                  r.layer_profiles.size()));
    full.set("unique_file_fraction",
             r.file_index ? r.file_index->totals().unique_file_fraction()
                          : 0.0);
    doc.set("full_run", std::move(full));

    auto modes = json::Value::object();
    modes.set("repositories",
              static_cast<std::uint64_t>(cmp.scale.repositories));
    modes.set("network_scale", cmp.network_scale);
    modes.set("staged_seconds", staged_wall);
    modes.set("streamed_seconds", streamed_wall);
    modes.set("speedup", staged_wall / streamed_wall);
    modes.set("queue_capacity", stream.queue_capacity);
    modes.set("queue_peak", stream.queue_peak);
    modes.set("producer_stalls", stream.producer_stalls);
    modes.set("reports_identical", identical);
    doc.set("mode_comparison", std::move(modes));

    auto trace = json::Value::object();
    trace.set("traced_seconds", traced_wall);
    trace.set("untraced_seconds", streamed_wall);
    trace.set("overhead_ratio", overhead);
    trace.set("overhead_bound", kTraceOverheadBound);
    trace.set("within_bound", overhead <= kTraceOverheadBound);
    trace.set("events_recorded", trace_recorded);
    trace.set("events_dropped", trace_dropped);
    trace.set("report_identical", traced_identical);
    trace.set("critical_path", obs::to_json(crit));
    doc.set("trace", std::move(trace));

    auto hotpath = json::Value::object();
    auto walk = json::Value::object();
    walk.set("files_per_layer", walk_files);
    walk.set("dirs_per_layer", walk_dirs);
    walk.set("legacy_files_per_sec", legacy_fps);
    walk.set("arena_files_per_sec", arena_fps);
    walk.set("speedup", walk_speedup);
    walk.set("speedup_target", kWalkSpeedupTarget);
    walk.set("within_target", walk_speedup >= kWalkSpeedupTarget);
    walk.set("arena_high_water_bytes", arena_high_water);
    hotpath.set("walk", std::move(walk));
    auto index = json::Value::object();
    index.set("observations", static_cast<std::uint64_t>(kIndexKeys));
    index.set("map_insert_ms", map_insert_ms);
    index.set("map_freeze_ms", map_drain_ms);
    index.set("art_insert_ms", art_insert_ms);
    index.set("art_freeze_ms", art_drain_ms);
    auto census = json::Value::object();
    census.set("node4", art_census.node4);
    census.set("node16", art_census.node16);
    census.set("node48", art_census.node48);
    census.set("node256", art_census.node256);
    census.set("keys", art_census.values);
    index.set("art_census", std::move(census));
    index.set("art_bytes_per_key", art_bytes_per_key);
    index.set("node16_probe_scalar_ms", probe_scalar_ms);
    index.set("node16_probe_simd_ms", probe_simd_ms);
    index.set("node16_probe_speedup",
              probe_simd_ms > 0.0 ? probe_scalar_ms / probe_simd_ms : 0.0);
#if defined(__SSE2__)
    index.set("node16_probe_simd_enabled", true);
#else
    index.set("node16_probe_simd_enabled", false);
#endif
    hotpath.set("index", std::move(index));
    doc.set("hotpath", std::move(hotpath));

    const char* json_path = std::getenv("DOCKMINE_BENCH_JSON");
    const std::string out_path =
        json_path != nullptr ? json_path : "BENCH_pipeline.json";
    std::ofstream out(out_path, std::ios::trunc);
    if (out) {
      out << doc.dump_pretty() << "\n";
      std::printf("\n  wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    }
  }
  return 0;
}
