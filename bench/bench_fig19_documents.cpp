// Fig. 19 — documents breakdown.
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);
  bench::print_subtype_figure(
      "Fig. 19", "Documents", breakdown,
      {
          {Type::kAsciiText, "80%", "~70% (with UTF/ISO)"},
          {Type::kXmlHtml, "13%", "18%"},
          {Type::kUtf8Text, "5%", "(in 70%)"},
          {Type::kIso8859Text, "0.4%", "(in 70%)"},
          {Type::kPdfPs, "small", "small"},
          {Type::kLatex, "small", "small"},
          {Type::kOtherDocument, "small", "small"},
      });
  return 0;
}
