// Fig. 10 — layers per image (CDF + histogram with the mode at 8).
#include "common.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& layers = ctx.stats.image_layers;

  stats::LinearHistogram hist(0, 40, 40);
  for (double v : layers.sorted_samples()) hist.add(v);

  core::FigureTable table("Fig. 10", "Layer count per image");
  table.row("median layers", "< 8", core::fmt_count(layers.median()))
      .row("p90 layers", "18", core::fmt_count(layers.p90()))
      .row("modal layer count", "8 (51,300 images)",
           core::fmt_count(static_cast<double>(hist.mode_bucket())))
      .row("single-layer images", "7,060 of 355,319 (2.0%)",
           core::fmt_pct(layers.fraction_equal(1)))
      .row("max layers", "120 (cfgarden/120-layer-image)",
           core::fmt_count(layers.max()), "scale-dependent tail");
  table.print(std::cout);
  core::print_cdf(std::cout, "layers per image", layers, core::fmt_count);
  core::print_histogram(std::cout, "layer count histogram (Fig. 10b)", hist,
                        core::fmt_count);
  return 0;
}
