// Fig. 24 / §V-B — file-level dedup: unique fraction, 31.5x/6.9x ratios,
// repeat-count CDF, and the empty file as the most-repeated content.
#include "common.h"

int main() {
  using namespace dockmine;
  auto ctx = bench::make_context();
  const auto& index = *ctx.stats.file_index;
  const auto totals = index.totals();
  const auto repeats = index.repeat_count_cdf();
  const auto top = index.max_repeat();

  // Expected values at THIS scale from the Heaps-law fit the model uses
  // (distinct ~= 20.9 * N^0.71); the paper's 31.5x is the N = 5.28G point.
  const double n = static_cast<double>(totals.total_files);
  const double expected_count_ratio =
      n / (synth::kHeapsK * std::pow(n, synth::kHeapsBeta));

  core::FigureTable table("Fig. 24", "File-level deduplication");
  table.row("unique files", "3.2% (at 5.28G files)",
            core::fmt_pct(totals.unique_file_fraction()),
            "scale-dependent; see Fig. 25 bench")
      .row("count dedup ratio", "31.5x (at 5.28G files)",
           core::fmt_ratio(totals.count_ratio(), 1),
           "Heaps-law expectation at this scale: " +
               core::fmt_ratio(expected_count_ratio, 1))
      .row("capacity dedup ratio", "6.9x (167 TB -> 24 TB)",
           core::fmt_ratio(totals.capacity_ratio(), 1))
      .row("files with >1 copy", "99.4%",
           core::fmt_pct(1.0 - repeats.fraction_equal(1)),
           "fraction of distinct contents with copies")
      .row("median copies per content", "~4", core::fmt_count(repeats.median()))
      .row("p90 copies", "<= 10", core::fmt_count(repeats.p90()))
      .row("max repeat count", "53,654,306 (an empty file)",
           core::fmt_count(static_cast<double>(top.count)),
           top.size == 0 ? "most-repeated content IS the empty file"
                         : "UNEXPECTED: not the empty file");
  table.print(std::cout);
  core::print_cdf(std::cout, "copies per distinct content", repeats,
                  core::fmt_count);
  return 0;
}
