// Extension (paper §VI future work): multiple image versions per
// repository. How much registry space does tag history cost, and how much
// does layer sharing reclaim across versions?
#include "common.h"
#include "dockmine/synth/versions.h"

int main() {
  using namespace dockmine;
  const synth::Scale scale = bench::bench_scale();
  std::cout << "snapshot: " << scale.repositories << " repositories\n";
  synth::HubModel hub(synth::Calibration::paper(), scale);

  std::cout << "\n=== Extension: multi-version repositories (paper §VI) ===\n";
  std::cout << "  mean historical tags swept; versions churn the top 2 "
               "layers per rebuild\n\n";
  std::cout << "  tags/repo  total tags  logical        stored         "
               "sharing\n";
  for (double mean : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    synth::VersionModel::Options options;
    options.extra_tags_mean = mean;
    const synth::VersionModel model(hub, options);
    const auto stats = model.analyze();
    std::printf("  %-9.0f  %-10llu  %-13s  %-13s  %s\n", mean + 1,
                static_cast<unsigned long long>(stats.tags),
                util::format_bytes(stats.logical_bytes).c_str(),
                util::format_bytes(stats.physical_bytes).c_str(),
                core::fmt_ratio(stats.sharing_ratio()).c_str());
  }
  std::cout << "\n  takeaway: because versions share everything below the\n"
               "  churned top layers, tag history is nearly free under\n"
               "  layer sharing - the cross-version sharing ratio grows\n"
               "  almost linearly with tags per repository.\n";
  return 0;
}
