// Ablation: downloader parallelism and unique-layer dedup (google-benchmark).
// The paper's downloader "can download multiple images simultaneously and
// fetch the individual layers of an image in parallel ... we only download
// unique layers" (§III-B); this quantifies both choices.
#include <benchmark/benchmark.h>

#include "dockmine/core/dataset.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/registry/service.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"

namespace {

using namespace dockmine;

struct World {
  World() : hub(synth::Calibration::light(), synth::Scale{250, 20170530}) {
    synth::Materializer materializer(hub, /*gzip_level=*/1);
    auto pushed = materializer.populate(service);
    if (!pushed.ok()) std::abort();
    for (const auto& repo : hub.repositories()) {
      if (repo.has_latest && !repo.requires_auth) repos.push_back(repo.name);
    }
  }
  synth::HubModel hub;
  registry::Service service;
  std::vector<std::string> repos;
};

World& world() {
  static World instance;
  return instance;
}

void BM_DownloadAll(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const bool dedup = state.range(1) != 0;
  std::uint64_t bytes = 0, images = 0;
  for (auto _ : state) {
    downloader::Options options;
    options.workers = workers;
    options.dedup_unique_layers = dedup;
    downloader::Downloader dl(world().service, options);
    const auto stats = dl.run(world().repos, nullptr);
    bytes += stats.bytes_downloaded;
    images += stats.succeeded;
  }
  state.counters["images/s"] = benchmark::Counter(
      static_cast<double>(images), benchmark::Counter::kIsRate);
  state.counters["MB_transferred"] =
      static_cast<double>(bytes) / 1e6 / static_cast<double>(state.iterations());
  state.SetLabel(dedup ? "unique-layer dedup ON" : "dedup OFF");
}

BENCHMARK(BM_DownloadAll)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

void BM_SingleImagePull(benchmark::State& state) {
  downloader::Downloader dl(world().service);
  const std::string& repo = world().repos.front();
  for (auto _ : state) {
    auto image = dl.download_one(repo);
    benchmark::DoNotOptimize(image);
  }
}
BENCHMARK(BM_SingleImagePull)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
