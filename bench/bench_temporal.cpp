// Temporal bench: prices the incremental DeltaAnalyzer against the
// from-scratch batch pipeline at every epoch of an evolving registry.
//
// Per epoch K: (a) advance the evolving registry and apply the delta —
// timing only the analysis (apply_epoch), not registry materialization;
// (b) rebuild a fresh epoch-K registry and run the ordinary serial batch
// pipeline over it through the external-service hook, again timing only
// the analysis run; (c) assert the two canonical analysis reports are
// byte-identical. The headline number is the delta-vs-full speedup on
// churn epochs (K >= 1): at the calibrated ~14% re-push fraction the
// delta path re-analyzes a small slice of the corpus and must come in at
// >= 3x (the acceptance gate; the exit code enforces it). Writes
// BENCH_temporal.json (DOCKMINE_BENCH_JSON overrides) and publishes the
// speedup as the dockmine_temporal_delta_speedup_x1000 gauge.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/json/json.h"
#include "dockmine/obs/obs.h"
#include "dockmine/temporal/delta_analyzer.h"
#include "dockmine/temporal/epoch_model.h"
#include "dockmine/util/stopwatch.h"

namespace {

using namespace dockmine;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

struct EpochRow {
  std::uint32_t epoch = 0;
  std::uint64_t layers_changed = 0;
  std::uint64_t layers_reused = 0;
  std::uint64_t layers_removed = 0;
  std::uint64_t bytes_fetched = 0;
  double delta_ms = 0.0;
  double full_ms = 0.0;
  double speedup = 0.0;
  bool verified = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dockmine;
  const bench::MetricsScope metrics(argc, argv);

  const synth::Scale scale = core::scale_from_env(synth::Scale{80, 20170530});
  const auto epochs =
      static_cast<std::uint32_t>(env_u64("DOCKMINE_EPOCHS", 4));
  const int gzip_level = 1;
  const synth::Calibration calibration = synth::Calibration::light();

  synth::HubModel hub(calibration, scale);
  temporal::EpochModel model(hub);
  temporal::EvolvingRegistry evolving(model, gzip_level);
  registry::Service service;
  temporal::DeltaAnalyzer analyzer;

  std::printf("temporal bench: %llu repositories (seed %llu), %u epochs, "
              "repush fraction %.2f\n",
              static_cast<unsigned long long>(scale.repositories),
              static_cast<unsigned long long>(scale.seed), epochs,
              model.config().repush_fraction);

  std::vector<EpochRow> rows;
  for (std::uint32_t epoch = 0; epoch <= epochs; ++epoch) {
    // Incremental side: registry advance is the workload, apply_epoch is
    // what we time (both sides time analysis only).
    std::vector<std::string> churned;
    if (epoch == 0) {
      auto pushed = evolving.initialize(service);
      if (!pushed.ok()) {
        std::fprintf(stderr, "initialize failed: %s\n",
                     pushed.error().to_string().c_str());
        return 1;
      }
      churned.reserve(hub.repositories().size());
      for (const auto& repo : hub.repositories()) churned.push_back(repo.name);
    } else {
      auto pushed = evolving.advance(service);
      if (!pushed.ok()) {
        std::fprintf(stderr, "advance failed: %s\n",
                     pushed.error().to_string().c_str());
        return 1;
      }
      churned = std::move(pushed.value().repushed);
    }
    auto delta = analyzer.apply_epoch(service, epoch, churned);
    if (!delta.ok()) {
      std::fprintf(stderr, "apply_epoch(%u) failed: %s\n", epoch,
                   delta.error().to_string().c_str());
      return 1;
    }

    // Batch oracle: fresh epoch-K registry (build excluded from timing),
    // serial pipeline so both sides are single-threaded apples-to-apples.
    registry::Service oracle_service;
    auto built = temporal::build_registry_at_epoch(model, epoch, gzip_level,
                                                   oracle_service);
    if (!built.ok()) {
      std::fprintf(stderr, "oracle build failed: %s\n",
                   built.error().to_string().c_str());
      return 1;
    }
    core::PipelineOptions options;
    options.scale = scale;
    options.calibration = calibration;
    options.gzip_level = gzip_level;
    options.mode = core::ExecutionMode::kSerial;
    options.external_service = &oracle_service;
    util::Stopwatch full_clock;
    auto batch = core::run_end_to_end(options);
    const double full_ms = full_clock.seconds() * 1000.0;
    if (!batch.ok()) {
      std::fprintf(stderr, "oracle run failed: %s\n",
                   batch.error().to_string().c_str());
      return 1;
    }

    auto incremental = analyzer.report();
    if (!incremental.ok()) {
      std::fprintf(stderr, "report failed: %s\n",
                   incremental.error().to_string().c_str());
      return 1;
    }
    EpochRow row;
    row.epoch = epoch;
    row.layers_changed = delta.value().layers_changed;
    row.layers_reused = delta.value().layers_reused;
    row.layers_removed = delta.value().layers_removed;
    row.bytes_fetched = delta.value().bytes_fetched;
    row.delta_ms = delta.value().wall_ms;
    row.full_ms = full_ms;
    row.speedup = row.delta_ms > 0.0 ? full_ms / row.delta_ms : 0.0;
    row.verified = incremental.value().dump() ==
                   core::analysis_report_json(batch.value()).dump();
    rows.push_back(row);
    std::printf("  epoch %u: %5llu changed %5llu reused %4llu retired | "
                "delta %8.1f ms  full %8.1f ms  speedup %5.2fx  %s\n",
                epoch, static_cast<unsigned long long>(row.layers_changed),
                static_cast<unsigned long long>(row.layers_reused),
                static_cast<unsigned long long>(row.layers_removed),
                row.delta_ms, full_ms, row.speedup,
                row.verified ? "byte-identical" : "REPORT MISMATCH");
  }

  // The gate applies to churn epochs only: epoch 0 is the initial full
  // ingest and its speedup is ~1x by construction.
  bool verified_all = true;
  double min_speedup = 0.0;
  double sum_speedup = 0.0;
  std::uint64_t churn_epochs = 0;
  for (const EpochRow& row : rows) {
    verified_all = verified_all && row.verified;
    if (row.epoch == 0) continue;
    min_speedup = churn_epochs == 0 ? row.speedup
                                    : std::min(min_speedup, row.speedup);
    sum_speedup += row.speedup;
    ++churn_epochs;
  }
  const double mean_speedup =
      churn_epochs > 0 ? sum_speedup / static_cast<double>(churn_epochs) : 0.0;
  obs::Registry::global()
      .gauge("dockmine_temporal_delta_speedup_x1000")
      .set(static_cast<std::int64_t>(mean_speedup * 1000.0));
  std::printf("  churn-epoch speedup: min %.2fx  mean %.2fx  (gate: >= 3x)\n",
              min_speedup, mean_speedup);

  auto doc = json::Value::object();
  doc.set("bench", "temporal");
  doc.set("repositories", scale.repositories);
  doc.set("seed", scale.seed);
  doc.set("epochs", static_cast<std::uint64_t>(epochs));
  {
    auto churn = json::Value::object();
    churn.set("repush_fraction", model.config().repush_fraction);
    churn.set("churn_layers",
              static_cast<std::uint64_t>(model.config().churn_layers));
    doc.set("churn", std::move(churn));
  }
  {
    auto per_epoch = json::Value::array();
    for (const EpochRow& row : rows) {
      auto entry = json::Value::object();
      entry.set("epoch", static_cast<std::uint64_t>(row.epoch));
      entry.set("layers_changed", row.layers_changed);
      entry.set("layers_reused", row.layers_reused);
      entry.set("layers_removed", row.layers_removed);
      entry.set("bytes_fetched", row.bytes_fetched);
      entry.set("delta_ms", row.delta_ms);
      entry.set("full_ms", row.full_ms);
      entry.set("speedup", row.speedup);
      entry.set("verified", row.verified);
      per_epoch.push_back(std::move(entry));
    }
    doc.set("per_epoch", std::move(per_epoch));
  }
  doc.set("speedup_min", min_speedup);
  doc.set("speedup_mean", mean_speedup);
  doc.set("verified_all", verified_all);

  const char* json_path = std::getenv("DOCKMINE_BENCH_JSON");
  const std::string out_path =
      json_path != nullptr ? json_path : "BENCH_temporal.json";
  std::ofstream out(out_path, std::ios::trunc);
  if (out) {
    out << doc.dump_pretty() << "\n";
    std::printf("\n  wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
  }

  const bool ok = verified_all && churn_epochs > 0 && min_speedup >= 3.0;
  return ok ? 0 : 1;
}
