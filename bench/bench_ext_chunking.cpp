// Extension: sub-file dedup. The paper measures file-level dedup (§V-B);
// this bench asks how much further fixed-block and content-defined
// chunking go on the same layer population, and what the chunk index
// costs. Runs in bytes mode on a sample of materialized layers.
#include "common.h"
#include "dockmine/dedup/chunking.h"
#include "dockmine/digest/digest.h"
#include "dockmine/stats/sampling.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/tar/reader.h"

int main() {
  using namespace dockmine;
  const synth::Scale scale = core::scale_from_env(synth::Scale{300, 20170530});
  std::cout << "snapshot: " << scale.repositories
            << " repositories (bytes mode; sampling layers <= 3000 files)\n";
  synth::HubModel hub(synth::Calibration::paper(), scale);
  const synth::Materializer materializer(hub, 1);

  dedup::FileDedupIndex file_index(1 << 16);
  dedup::ChunkDedupIndex fixed_index, cdc_index;
  const dedup::FixedChunker fixed(8192);
  const dedup::GearChunker cdc(8192);

  util::Rng rng(1);
  const auto& layers = hub.unique_layers();
  const auto picks = stats::sample_indices(layers.size(), 400, rng);
  std::uint64_t sampled = 0;
  for (std::uint64_t ordinal : picks) {
    const synth::LayerSpec spec = hub.layer_spec(layers[ordinal]);
    if (spec.file_count == 0 || spec.file_count > 3000) continue;
    const std::string tar_bytes = materializer.layer_tar(spec);
    tar::Reader reader(tar_bytes);
    auto status = reader.for_each([&](const tar::Entry& entry) {
      if (!entry.is_file()) return;
      const std::string_view content = entry.content;
      file_index.add(digest::Digest::of(content).key64(), content.size(),
                     filetype::Type::kOtherBinary,
                     static_cast<std::uint32_t>(sampled));
      for (const auto& chunk : fixed.chunk(content)) {
        fixed_index.add(
            digest::Digest::of(content.data() + chunk.offset, chunk.size)
                .key64(),
            chunk.size);
      }
      for (const auto& chunk : cdc.chunk(content)) {
        cdc_index.add(
            digest::Digest::of(content.data() + chunk.offset, chunk.size)
                .key64(),
            chunk.size);
      }
    });
    if (!status.ok()) continue;
    ++sampled;
  }

  const auto file_totals = file_index.totals();
  core::FigureTable table("Extension", "File vs chunk dedup (8 KiB chunks)");
  table
      .row("file-level capacity dedup", "paper's mechanism",
           core::fmt_ratio(file_totals.capacity_ratio()),
           core::fmt_bytes(static_cast<double>(file_totals.unique_bytes)) +
               " stored")
      .row("fixed 8K chunk dedup", "-",
           core::fmt_ratio(fixed_index.capacity_ratio()),
           core::fmt_bytes(static_cast<double>(fixed_index.unique_bytes())) +
               " + " +
               core::fmt_bytes(
                   static_cast<double>(fixed_index.index_overhead_bytes())) +
               " index")
      .row("CDC 8K chunk dedup", "-",
           core::fmt_ratio(cdc_index.capacity_ratio()),
           core::fmt_bytes(static_cast<double>(cdc_index.unique_bytes())) +
               " + " +
               core::fmt_bytes(
                   static_cast<double>(cdc_index.index_overhead_bytes())) +
               " index");
  table.print(std::cout);
  std::cout << "  sampled " << sampled << " layers, "
            << util::format_count(file_totals.total_files) << " files, "
            << util::format_bytes(static_cast<double>(file_totals.total_bytes))
            << "\n"
            << "  note: most gains beyond file level come from zero pages in\n"
            << "  sparse DB files; whole-file duplication already captures\n"
            << "  the bulk (the paper's conclusion holds at sub-file grain).\n";
  return 0;
}
