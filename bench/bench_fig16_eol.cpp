// Fig. 16 — EOL (executables, object code, libraries) breakdown, plus the
// ELF vs intermediate-representation aggregates the paper discusses.
#include "common.h"

int main() {
  using namespace dockmine;
  using filetype::Type;
  auto ctx = bench::make_context();
  const dedup::TypeBreakdown breakdown(*ctx.stats.file_index);

  bench::print_subtype_figure(
      "Fig. 16", "EOL files", breakdown,
      {
          {Type::kPythonBytecode, "(Com. 64% total)", "(Com. small)"},
          {Type::kJavaClass, "(in Com.)", "(in Com.)"},
          {Type::kTerminfo, "(in Com.)", "(in Com.)"},
          {Type::kElfSharedObject, "(ELF 30% total)", "(ELF 84% total)"},
          {Type::kElfExecutable, "(in ELF)", "(in ELF)"},
          {Type::kElfRelocatable, "(in ELF)", "(in ELF)"},
          {Type::kMsExecutable, "2%", "small"},
          {Type::kStaticLibrary, "(libraries)", "small"},
          {Type::kDebRpmPackage, "small", "small"},
          {Type::kCoff, "small", "small"},
          {Type::kMachO, "<0.01%", "tiny"},
      });

  // Aggregate supertype shares the paper quotes directly.
  const auto& eol = breakdown.by_group(filetype::Group::kEol);
  double elf_count = 0, elf_bytes = 0, com_count = 0, com_bytes = 0;
  double elf_unique_bytes = 0, elf_total = 0;
  for (std::size_t t = 0; t < filetype::kTypeCount; ++t) {
    const auto type = static_cast<Type>(t);
    const auto& ts = breakdown.by_type(type);
    if (filetype::is_elf(type)) {
      elf_count += static_cast<double>(ts.count);
      elf_bytes += static_cast<double>(ts.bytes);
      elf_unique_bytes += static_cast<double>(ts.unique_bytes);
      elf_total += static_cast<double>(ts.bytes);
    }
    if (filetype::is_intermediate_representation(type)) {
      com_count += static_cast<double>(ts.count);
      com_bytes += static_cast<double>(ts.bytes);
    }
  }
  core::FigureTable agg("Fig. 16 (aggregates)", "ELF vs intermediate (Com.)");
  agg.row("ELF share of EOL count", "30%",
          core::fmt_pct(elf_count / static_cast<double>(eol.count)))
      .row("ELF share of EOL capacity", "84%",
           core::fmt_pct(elf_bytes / static_cast<double>(eol.bytes)))
      .row("Com. share of EOL count", "64%",
           core::fmt_pct(com_count / static_cast<double>(eol.count)))
      .row("avg ELF file size", "312 KB",
           core::fmt_bytes(elf_count > 0 ? elf_bytes / elf_count : 0))
      .row("avg Com. file size", "9 KB",
           core::fmt_bytes(com_count > 0 ? com_bytes / com_count : 0));
  agg.print(std::cout);
  return 0;
}
