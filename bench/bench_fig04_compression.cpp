// Fig. 4 — FLS-to-CLS compression ratios. Two measurements:
//  (a) the modeled ratio over every layer in the snapshot, and
//  (b) REAL gzip over a sample of materialized layer tars, proving the
//      bytes path delivers the same distribution shape.
#include <algorithm>

#include "common.h"
#include "dockmine/compress/gzip.h"
#include "dockmine/stats/sampling.h"
#include "dockmine/synth/materialize.h"

int main() {
  using namespace dockmine;
  core::DatasetOptions options;
  options.file_dedup = false;
  auto ctx = bench::make_context(options);
  const auto& s = ctx.stats;

  core::FigureTable table("Fig. 4", "Layer compression ratio (FLS/CLS)");
  table.row("median ratio", "2.6", core::fmt_ratio(s.layer_ratio.median()))
      .row("p90 ratio", "< 4", core::fmt_ratio(s.layer_ratio.p90()))
      .row("max ratio", "1026", core::fmt_ratio(s.layer_ratio.max(), 0))
      .row("ratio in [2,3)", "~600k of 1.79M layers",
           core::fmt_pct(s.layer_ratio.fraction_at_or_below(3.0) -
                         s.layer_ratio.fraction_at_or_below(2.0)))
      .row("ratio in [1,2)", "~300k of 1.79M layers",
           core::fmt_pct(s.layer_ratio.fraction_at_or_below(2.0) -
                         s.layer_ratio.fraction_at_or_below(1.0)));
  table.print(std::cout);
  core::print_cdf(std::cout, "modeled layer ratio", s.layer_ratio,
                  [](double v) { return core::fmt_ratio(v); });

  stats::LinearHistogram hist(0, 8, 16);
  for (double v : s.layer_ratio.sorted_samples()) hist.add(v);
  core::print_histogram(std::cout, "ratio histogram (Fig. 4b)", hist,
                        [](double v) { return core::fmt_ratio(v); });

  // (b) real gzip over sampled materialized layers.
  const synth::Materializer materializer(ctx.hub, /*gzip_level=*/6);
  util::Rng rng(7);
  const auto& layers = ctx.hub.unique_layers();
  const auto picks = stats::sample_indices(layers.size(), 200, rng);
  stats::Ecdf real_ratio;
  for (std::uint64_t index : picks) {
    const synth::LayerSpec spec = ctx.hub.layer_spec(layers[index]);
    if (spec.file_count == 0 || spec.file_count > 3000) continue;
    const std::string tar = materializer.layer_tar(spec);
    auto blob = compress::gzip_compress(tar, 6);
    if (!blob.ok()) continue;
    std::uint64_t fls = 0;
    ctx.hub.layers().for_each_file(
        spec, [&](const synth::FileInstance& f) { fls += f.size; });
    if (fls == 0) continue;
    real_ratio.add(static_cast<double>(fls) /
                   static_cast<double>(blob.value().size()));
  }
  core::print_cdf(std::cout, "REAL gzip ratio over sampled layers",
                  real_ratio, [](double v) { return core::fmt_ratio(v); });
  std::cout << "note: the real-gzip median should track the modeled median\n"
               "(tar headers and cross-file redundancy make it slightly\n"
               "higher); the paper's 1026x outliers are sparse DB layers.\n";
  return 0;
}
