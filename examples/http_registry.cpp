// http_registry: serve a synthetic Docker Hub over real HTTP and measure a
// full crawl+pull against it — the closest dockmine gets to the paper's
// actual fieldwork (their downloader spoke this protocol to Docker Hub).
//
//   $ ./examples/http_registry [repositories] [workers]
#include <cstdlib>
#include <iostream>

#include "dockmine/crawler/crawler.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/registry/http_gateway.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/util/bytes.h"
#include "dockmine/util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dockmine;
  const std::uint64_t repos =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;
  const std::size_t workers =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  synth::HubModel hub(synth::Calibration::light(), synth::Scale{repos, 7});
  registry::Service service;
  synth::Materializer materializer(hub);
  if (auto pushed = materializer.populate(service); !pushed.ok()) {
    std::cerr << pushed.error().to_string() << "\n";
    return 1;
  }
  registry::SearchIndex search(service);
  registry::HttpGateway gateway(service, &search);
  auto server = gateway.serve(0, workers);
  if (!server.ok()) {
    std::cerr << "serve: " << server.error().to_string() << "\n";
    return 1;
  }
  std::cout << "registry listening on 127.0.0.1:" << server.value()->port()
            << "  (try: curl http://127.0.0.1:" << server.value()->port()
            << "/v2/)\n";

  registry::RemoteRegistry remote(server.value()->port(), "demo-token");
  crawler::Crawler crawler(remote);
  util::Stopwatch clock;
  const auto crawl = crawler.crawl_all();
  std::cout << "crawl over HTTP: " << crawl.repositories.size()
            << " repositories from " << crawl.raw_hits << " hits across "
            << crawl.pages_fetched << " pages in " << clock.seconds()
            << "s\n";

  downloader::Options options;
  options.workers = workers;
  downloader::Downloader downloader(remote, options);
  clock.restart();
  const auto stats = downloader.run(crawl.repositories, nullptr);
  std::cout << "pull over HTTP:  " << stats.succeeded << " images, "
            << util::format_bytes(stats.bytes_downloaded) << " in "
            << clock.seconds() << "s with " << workers << " workers ("
            << stats.layers_fetched << " layer transfers, "
            << stats.layers_deduped << " avoided by unique-layer dedup; "
            << stats.failed_auth << " auth-gated, " << stats.failed_no_tag
            << " without latest)\n";
  std::cout << "server handled " << server.value()->requests_served()
            << " HTTP requests\n";
  server.value()->stop();
  return 0;
}
