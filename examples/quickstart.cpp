// Quickstart: the whole library in one sitting.
//
// Builds a small synthetic Docker Hub snapshot, publishes it as a real
// registry (gzip'd tar layers, schema-v2 manifests), then runs the paper's
// measurement pipeline against it: crawl -> download -> analyze -> dedup.
//
//   $ ./examples/quickstart [repositories]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "dockmine/core/pipeline.h"
#include "dockmine/core/report.h"
#include "dockmine/dedup/by_type.h"
#include "dockmine/util/bytes.h"

int main(int argc, char** argv) {
  using namespace dockmine;

  core::PipelineOptions options;
  options.calibration = synth::Calibration::light();
  options.scale.repositories =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  options.download_workers = 4;
  options.analyze_workers = 2;

  std::cout << "dockmine quickstart: crawling a synthetic Docker Hub of "
            << options.scale.repositories << " repositories...\n";

  auto run = core::run_end_to_end(options);
  if (!run.ok()) {
    std::cerr << "pipeline failed: " << run.error().to_string() << "\n";
    return 1;
  }
  const auto& r = run.value();

  std::cout << "\ncrawler:    " << r.crawl.raw_hits << " raw hits -> "
            << r.crawl.repositories.size() << " distinct repositories ("
            << r.crawl.pages_fetched << " pages)\n";
  std::cout << "downloader: " << r.download.succeeded << " images ok, "
            << r.download.failed_auth << " needed auth, "
            << r.download.failed_no_tag << " had no 'latest' tag; "
            << util::format_bytes(r.download.bytes_downloaded)
            << " transferred, " << r.download.layers_deduped
            << " duplicate layer fetches avoided\n";
  std::cout << "analyzer:   " << r.layer_profiles.size()
            << " unique layers profiled across " << r.images.size()
            << " images\n";

  const auto totals = r.file_index->totals();
  std::cout << "dedup:      " << util::format_count(totals.total_files)
            << " files, " << util::format_count(totals.unique_files)
            << " unique (" << util::format_percent(totals.unique_file_fraction())
            << "); capacity " << util::format_bytes(totals.total_bytes)
            << " -> " << util::format_bytes(totals.unique_bytes) << " ("
            << core::fmt_ratio(totals.capacity_ratio()) << ")\n";
  std::cout << "sharing:    layer sharing saves "
            << core::fmt_ratio(r.sharing.sharing_ratio()) << " ("
            << util::format_bytes(r.sharing.logical_bytes()) << " logical vs "
            << util::format_bytes(r.sharing.physical_bytes())
            << " stored)\n";

  const dedup::TypeBreakdown breakdown(*r.file_index);
  std::cout << "\nfile types (count / capacity):\n";
  for (std::size_t g = 0; g < filetype::kGroupCount; ++g) {
    const auto group = static_cast<filetype::Group>(g);
    std::printf("  %-5s %6s / %s\n",
                std::string(filetype::to_string(group)).c_str(),
                util::format_percent(breakdown.count_share(group)).c_str(),
                util::format_percent(breakdown.capacity_share(group)).c_str());
  }
  std::cout << "\nNext: run the figure benches in build/bench/ to reproduce "
               "the paper's evaluation.\n";
  return 0;
}
