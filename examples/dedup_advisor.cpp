// dedup_advisor: storage planning for a Docker registry.
//
// Given a snapshot scale, quantifies the three storage strategies the
// paper's §V analyzes:
//   1. naive           — every image stores private copies of its layers
//   2. layer sharing   — what Docker registries do today (paper: 1.8x)
//   3. file-level dedup — the paper's proposal (31.5x / 6.9x at full scale)
// and prints the advisor's recommendation with projected savings.
//
//   $ ./examples/dedup_advisor [repositories]
#include <cstdlib>
#include <iostream>

#include "dockmine/core/dataset.h"
#include "dockmine/core/report.h"
#include "dockmine/util/bytes.h"

int main(int argc, char** argv) {
  using namespace dockmine;
  synth::Scale scale;
  scale.repositories = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;

  std::cout << "analyzing a snapshot of " << scale.repositories
            << " repositories...\n";
  synth::HubModel hub(synth::Calibration::paper(), scale);
  core::DatasetOptions options;
  options.file_dedup = true;
  const auto stats = core::DatasetStats::compute(hub, options);
  const auto totals = stats.file_index->totals();

  const double naive = static_cast<double>(stats.sharing.logical_bytes());
  const double shared = static_cast<double>(stats.sharing.physical_bytes());
  // File dedup applies to uncompressed content; express it against the
  // uncompressed dataset like the paper (167 TB -> 24 TB).
  const double uncompressed = static_cast<double>(totals.total_bytes);
  const double file_dedup = static_cast<double>(totals.unique_bytes);

  core::FigureTable table("advisor", "Projected registry storage");
  table.row("naive (no sharing)", "85 TB at full scale",
            core::fmt_bytes(naive), "compressed bytes")
      .row("layer sharing", "47 TB at full scale", core::fmt_bytes(shared),
           "saves " + core::fmt_ratio(naive / shared))
      .row("uncompressed dataset", "167 TB at full scale",
           core::fmt_bytes(uncompressed))
      .row("file-level dedup", "24 TB at full scale",
           core::fmt_bytes(file_dedup),
           "saves " + core::fmt_ratio(totals.capacity_ratio()) +
               " vs uncompressed")
      .row("unique files", "3.2% at full scale",
           core::fmt_pct(totals.unique_file_fraction()),
           "ratio grows with registry size (Fig. 25)");
  table.print(std::cout);

  std::cout << "\nrecommendation: layer sharing alone leaves "
            << core::fmt_pct(1.0 - 1.0 / totals.count_ratio())
            << " of files stored redundantly; a file-level deduplicating\n"
               "backend (content-addressed file store under the layer\n"
               "index) reclaims "
            << core::fmt_bytes(uncompressed - file_dedup)
            << " at this scale, and proportionally more as the registry\n"
               "grows.\n";
  return 0;
}
