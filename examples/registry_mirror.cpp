// registry_mirror: mirror one registry into another, measuring how much a
// content-addressed store saves — the operational scenario behind the
// paper's data-reduction analysis.
//
// The "upstream" is a synthetic Docker Hub; the mirror pulls every public
// image with the parallel downloader and re-pushes manifests + blobs into
// its own service, then compares logical traffic vs stored bytes.
//
//   $ ./examples/registry_mirror [repositories] [workers]
#include <cstdlib>
#include <iostream>

#include "dockmine/crawler/crawler.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/util/bytes.h"
#include "dockmine/util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dockmine;
  const std::uint64_t repos =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;
  const std::size_t workers =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  // Upstream hub.
  synth::HubModel hub(synth::Calibration::light(), synth::Scale{repos, 42});
  registry::Service upstream;
  synth::Materializer materializer(hub);
  if (auto pushed = materializer.populate(upstream); !pushed.ok()) {
    std::cerr << pushed.error().to_string() << "\n";
    return 1;
  }

  // Discover everything worth mirroring.
  registry::SearchIndex index(upstream);
  crawler::Crawler crawler(index);
  const auto crawl = crawler.crawl_all();
  std::cout << "discovered " << crawl.repositories.size()
            << " repositories (" << crawl.duplicates_removed
            << " duplicate search hits dropped)\n";

  // Mirror.
  registry::Service mirror;
  downloader::Options dl_options;
  dl_options.workers = workers;
  downloader::Downloader downloader(upstream, dl_options);
  util::Stopwatch clock;
  std::uint64_t mirrored = 0;
  const auto stats = downloader.run(
      crawl.repositories, [&](downloader::DownloadedImage&& image) {
        for (std::size_t i = 0; i < image.layer_blobs.size(); ++i) {
          mirror.push_blob(std::string(*image.layer_blobs[i]));
        }
        (void)mirror.push_manifest(image.manifest);
        ++mirrored;
      });

  const auto blob_stats = mirror.blob_stats();
  std::cout << "mirrored " << mirrored << " images in " << clock.seconds()
            << "s with " << workers << " workers\n"
            << "  transferred:    "
            << util::format_bytes(stats.bytes_downloaded) << " ("
            << stats.layers_fetched << " layer blobs, "
            << stats.layers_deduped << " duplicate fetches avoided)\n"
            << "  mirror stores:  "
            << util::format_bytes(blob_stats.physical_bytes) << " physical / "
            << util::format_bytes(blob_stats.logical_bytes)
            << " logical pushes (content addressing saved "
            << util::format_percent(1.0 - static_cast<double>(blob_stats.physical_bytes) /
                                              static_cast<double>(blob_stats.logical_bytes))
            << ")\n"
            << "  skipped: " << stats.failed_auth << " auth-gated, "
            << stats.failed_no_tag << " without 'latest'\n";
  return 0;
}
