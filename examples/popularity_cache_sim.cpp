// popularity_cache_sim: size a pull-through layer cache for a registry.
//
// The paper's popularity analysis (Fig. 8, §IV-B) motivates caching:
// pulls are extremely skewed. This tool sweeps cache capacities against a
// popularity-weighted pull workload and reports the smallest cache that
// reaches a target hit ratio.
//
//   $ ./examples/popularity_cache_sim [repositories] [target_hit_pct]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include "dockmine/core/cache_sim.h"
#include "dockmine/core/dataset.h"
#include "dockmine/util/bytes.h"

int main(int argc, char** argv) {
  using namespace dockmine;
  synth::Scale scale;
  scale.repositories = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;
  const double target =
      (argc > 2 ? std::strtod(argv[2], nullptr) : 90.0) / 100.0;

  synth::HubModel hub(synth::Calibration::paper(), scale);
  core::DatasetOptions options;
  options.file_dedup = false;
  const auto stats = core::DatasetStats::compute(hub, options);

  std::unordered_map<synth::LayerId, std::size_t> dense;
  for (std::size_t i = 0; i < hub.unique_layers().size(); ++i) {
    dense[hub.unique_layers()[i]] = i;
  }
  std::vector<core::CachedImage> images;
  std::uint64_t dataset_bytes = 0;
  for (const synth::RepoSpec& repo : hub.repositories()) {
    if (repo.image_index < 0 || repo.requires_auth) continue;
    core::CachedImage entry;
    for (synth::LayerId id : hub.images()[repo.image_index].layers) {
      const auto& agg = stats.layer_aggregates()[dense.at(id)];
      entry.layer_keys.push_back(id);
      entry.layer_sizes.push_back(agg.cls);
      dataset_bytes += agg.cls;
    }
    entry.popularity_weight = static_cast<double>(repo.pull_count) + 1.0;
    images.push_back(std::move(entry));
  }

  std::cout << "dataset: " << util::format_bytes(dataset_bytes)
            << " of compressed layers across " << images.size()
            << " images; pulls follow the Fig. 8 skew\n\n";
  std::printf("  %-14s %-10s %-10s\n", "capacity", "hit%", "byte-hit%");
  std::uint64_t recommended = 0;
  for (double frac = 0.0005; frac <= 1.0; frac *= 2) {
    const auto capacity = static_cast<std::uint64_t>(
        frac * static_cast<double>(dataset_bytes));
    const auto result =
        core::simulate_layer_cache(images, capacity, 60000, 99);
    std::printf("  %-14s %-10s %-10s\n",
                util::format_bytes(capacity).c_str(),
                util::format_percent(result.hit_ratio()).c_str(),
                util::format_percent(result.byte_hit_ratio()).c_str());
    if (recommended == 0 && result.hit_ratio() >= target) {
      recommended = capacity;
    }
  }
  if (recommended != 0) {
    std::cout << "\nsmallest swept cache reaching "
              << util::format_percent(target) << " object hits: "
              << util::format_bytes(recommended) << " ("
              << util::format_percent(static_cast<double>(recommended) /
                                      static_cast<double>(dataset_bytes))
              << " of the dataset)\n";
  } else {
    std::cout << "\nno swept capacity reached "
              << util::format_percent(target) << " hits\n";
  }
  return 0;
}
