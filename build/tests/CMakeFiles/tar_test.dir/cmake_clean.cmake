file(REMOVE_RECURSE
  "CMakeFiles/tar_test.dir/tar_test.cpp.o"
  "CMakeFiles/tar_test.dir/tar_test.cpp.o.d"
  "tar_test"
  "tar_test.pdb"
  "tar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
