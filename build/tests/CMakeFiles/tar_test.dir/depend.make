# Empty dependencies file for tar_test.
# This may be replaced when dependencies are built.
