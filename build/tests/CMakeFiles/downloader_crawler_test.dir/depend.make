# Empty dependencies file for downloader_crawler_test.
# This may be replaced when dependencies are built.
