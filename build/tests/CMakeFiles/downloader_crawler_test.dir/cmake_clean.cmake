file(REMOVE_RECURSE
  "CMakeFiles/downloader_crawler_test.dir/downloader_crawler_test.cpp.o"
  "CMakeFiles/downloader_crawler_test.dir/downloader_crawler_test.cpp.o.d"
  "downloader_crawler_test"
  "downloader_crawler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downloader_crawler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
