
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dataset_stats_test.cpp" "tests/CMakeFiles/dataset_stats_test.dir/dataset_stats_test.cpp.o" "gcc" "tests/CMakeFiles/dataset_stats_test.dir/dataset_stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_downloader.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_dedup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_tar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_filetype.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_digest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
