file(REMOVE_RECURSE
  "CMakeFiles/blob_registry_test.dir/blob_registry_test.cpp.o"
  "CMakeFiles/blob_registry_test.dir/blob_registry_test.cpp.o.d"
  "blob_registry_test"
  "blob_registry_test.pdb"
  "blob_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
