# Empty dependencies file for blob_registry_test.
# This may be replaced when dependencies are built.
