# Empty compiler generated dependencies file for versions_test.
# This may be replaced when dependencies are built.
