file(REMOVE_RECURSE
  "CMakeFiles/versions_test.dir/versions_test.cpp.o"
  "CMakeFiles/versions_test.dir/versions_test.cpp.o.d"
  "versions_test"
  "versions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
