file(REMOVE_RECURSE
  "CMakeFiles/dm_digest.dir/dockmine/digest/digest.cpp.o"
  "CMakeFiles/dm_digest.dir/dockmine/digest/digest.cpp.o.d"
  "CMakeFiles/dm_digest.dir/dockmine/digest/sha256.cpp.o"
  "CMakeFiles/dm_digest.dir/dockmine/digest/sha256.cpp.o.d"
  "libdm_digest.a"
  "libdm_digest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_digest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
