# Empty compiler generated dependencies file for dm_digest.
# This may be replaced when dependencies are built.
