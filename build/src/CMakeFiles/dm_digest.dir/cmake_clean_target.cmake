file(REMOVE_RECURSE
  "libdm_digest.a"
)
