file(REMOVE_RECURSE
  "CMakeFiles/dm_compress.dir/dockmine/compress/content_gen.cpp.o"
  "CMakeFiles/dm_compress.dir/dockmine/compress/content_gen.cpp.o.d"
  "CMakeFiles/dm_compress.dir/dockmine/compress/crc32.cpp.o"
  "CMakeFiles/dm_compress.dir/dockmine/compress/crc32.cpp.o.d"
  "CMakeFiles/dm_compress.dir/dockmine/compress/gzip.cpp.o"
  "CMakeFiles/dm_compress.dir/dockmine/compress/gzip.cpp.o.d"
  "libdm_compress.a"
  "libdm_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
