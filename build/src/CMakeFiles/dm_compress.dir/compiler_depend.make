# Empty compiler generated dependencies file for dm_compress.
# This may be replaced when dependencies are built.
