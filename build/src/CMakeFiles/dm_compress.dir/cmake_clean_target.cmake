file(REMOVE_RECURSE
  "libdm_compress.a"
)
