file(REMOVE_RECURSE
  "libdm_downloader.a"
)
