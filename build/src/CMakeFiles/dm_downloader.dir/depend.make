# Empty dependencies file for dm_downloader.
# This may be replaced when dependencies are built.
