file(REMOVE_RECURSE
  "CMakeFiles/dm_downloader.dir/dockmine/downloader/downloader.cpp.o"
  "CMakeFiles/dm_downloader.dir/dockmine/downloader/downloader.cpp.o.d"
  "libdm_downloader.a"
  "libdm_downloader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_downloader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
