file(REMOVE_RECURSE
  "CMakeFiles/dm_blob.dir/dockmine/blob/disk_store.cpp.o"
  "CMakeFiles/dm_blob.dir/dockmine/blob/disk_store.cpp.o.d"
  "CMakeFiles/dm_blob.dir/dockmine/blob/store.cpp.o"
  "CMakeFiles/dm_blob.dir/dockmine/blob/store.cpp.o.d"
  "libdm_blob.a"
  "libdm_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
