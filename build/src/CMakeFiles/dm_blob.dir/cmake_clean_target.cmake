file(REMOVE_RECURSE
  "libdm_blob.a"
)
