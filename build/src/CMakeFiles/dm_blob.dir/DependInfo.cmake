
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dockmine/blob/disk_store.cpp" "src/CMakeFiles/dm_blob.dir/dockmine/blob/disk_store.cpp.o" "gcc" "src/CMakeFiles/dm_blob.dir/dockmine/blob/disk_store.cpp.o.d"
  "/root/repo/src/dockmine/blob/store.cpp" "src/CMakeFiles/dm_blob.dir/dockmine/blob/store.cpp.o" "gcc" "src/CMakeFiles/dm_blob.dir/dockmine/blob/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_digest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
