# Empty dependencies file for dm_blob.
# This may be replaced when dependencies are built.
