
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dockmine/tar/header.cpp" "src/CMakeFiles/dm_tar.dir/dockmine/tar/header.cpp.o" "gcc" "src/CMakeFiles/dm_tar.dir/dockmine/tar/header.cpp.o.d"
  "/root/repo/src/dockmine/tar/reader.cpp" "src/CMakeFiles/dm_tar.dir/dockmine/tar/reader.cpp.o" "gcc" "src/CMakeFiles/dm_tar.dir/dockmine/tar/reader.cpp.o.d"
  "/root/repo/src/dockmine/tar/writer.cpp" "src/CMakeFiles/dm_tar.dir/dockmine/tar/writer.cpp.o" "gcc" "src/CMakeFiles/dm_tar.dir/dockmine/tar/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
