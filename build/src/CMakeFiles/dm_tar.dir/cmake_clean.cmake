file(REMOVE_RECURSE
  "CMakeFiles/dm_tar.dir/dockmine/tar/header.cpp.o"
  "CMakeFiles/dm_tar.dir/dockmine/tar/header.cpp.o.d"
  "CMakeFiles/dm_tar.dir/dockmine/tar/reader.cpp.o"
  "CMakeFiles/dm_tar.dir/dockmine/tar/reader.cpp.o.d"
  "CMakeFiles/dm_tar.dir/dockmine/tar/writer.cpp.o"
  "CMakeFiles/dm_tar.dir/dockmine/tar/writer.cpp.o.d"
  "libdm_tar.a"
  "libdm_tar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_tar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
