# Empty compiler generated dependencies file for dm_tar.
# This may be replaced when dependencies are built.
