file(REMOVE_RECURSE
  "libdm_tar.a"
)
