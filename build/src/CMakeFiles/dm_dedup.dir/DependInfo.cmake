
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dockmine/dedup/by_type.cpp" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/by_type.cpp.o" "gcc" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/by_type.cpp.o.d"
  "/root/repo/src/dockmine/dedup/chunking.cpp" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/chunking.cpp.o" "gcc" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/chunking.cpp.o.d"
  "/root/repo/src/dockmine/dedup/cross_dup.cpp" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/cross_dup.cpp.o" "gcc" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/cross_dup.cpp.o.d"
  "/root/repo/src/dockmine/dedup/file_dedup.cpp" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/file_dedup.cpp.o" "gcc" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/file_dedup.cpp.o.d"
  "/root/repo/src/dockmine/dedup/growth.cpp" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/growth.cpp.o" "gcc" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/growth.cpp.o.d"
  "/root/repo/src/dockmine/dedup/layer_sharing.cpp" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/layer_sharing.cpp.o" "gcc" "src/CMakeFiles/dm_dedup.dir/dockmine/dedup/layer_sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_tar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_filetype.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_digest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
