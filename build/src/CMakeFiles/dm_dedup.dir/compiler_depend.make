# Empty compiler generated dependencies file for dm_dedup.
# This may be replaced when dependencies are built.
