# Empty dependencies file for dm_dedup.
# This may be replaced when dependencies are built.
