file(REMOVE_RECURSE
  "libdm_dedup.a"
)
