file(REMOVE_RECURSE
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/by_type.cpp.o"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/by_type.cpp.o.d"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/chunking.cpp.o"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/chunking.cpp.o.d"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/cross_dup.cpp.o"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/cross_dup.cpp.o.d"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/file_dedup.cpp.o"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/file_dedup.cpp.o.d"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/growth.cpp.o"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/growth.cpp.o.d"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/layer_sharing.cpp.o"
  "CMakeFiles/dm_dedup.dir/dockmine/dedup/layer_sharing.cpp.o.d"
  "libdm_dedup.a"
  "libdm_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
