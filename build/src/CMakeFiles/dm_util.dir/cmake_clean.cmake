file(REMOVE_RECURSE
  "CMakeFiles/dm_util.dir/dockmine/util/bytes.cpp.o"
  "CMakeFiles/dm_util.dir/dockmine/util/bytes.cpp.o.d"
  "CMakeFiles/dm_util.dir/dockmine/util/error.cpp.o"
  "CMakeFiles/dm_util.dir/dockmine/util/error.cpp.o.d"
  "CMakeFiles/dm_util.dir/dockmine/util/log.cpp.o"
  "CMakeFiles/dm_util.dir/dockmine/util/log.cpp.o.d"
  "CMakeFiles/dm_util.dir/dockmine/util/rng.cpp.o"
  "CMakeFiles/dm_util.dir/dockmine/util/rng.cpp.o.d"
  "CMakeFiles/dm_util.dir/dockmine/util/thread_pool.cpp.o"
  "CMakeFiles/dm_util.dir/dockmine/util/thread_pool.cpp.o.d"
  "libdm_util.a"
  "libdm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
