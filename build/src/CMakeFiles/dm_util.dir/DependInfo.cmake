
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dockmine/util/bytes.cpp" "src/CMakeFiles/dm_util.dir/dockmine/util/bytes.cpp.o" "gcc" "src/CMakeFiles/dm_util.dir/dockmine/util/bytes.cpp.o.d"
  "/root/repo/src/dockmine/util/error.cpp" "src/CMakeFiles/dm_util.dir/dockmine/util/error.cpp.o" "gcc" "src/CMakeFiles/dm_util.dir/dockmine/util/error.cpp.o.d"
  "/root/repo/src/dockmine/util/log.cpp" "src/CMakeFiles/dm_util.dir/dockmine/util/log.cpp.o" "gcc" "src/CMakeFiles/dm_util.dir/dockmine/util/log.cpp.o.d"
  "/root/repo/src/dockmine/util/rng.cpp" "src/CMakeFiles/dm_util.dir/dockmine/util/rng.cpp.o" "gcc" "src/CMakeFiles/dm_util.dir/dockmine/util/rng.cpp.o.d"
  "/root/repo/src/dockmine/util/thread_pool.cpp" "src/CMakeFiles/dm_util.dir/dockmine/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/dm_util.dir/dockmine/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
