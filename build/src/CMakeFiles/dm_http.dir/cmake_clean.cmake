file(REMOVE_RECURSE
  "CMakeFiles/dm_http.dir/dockmine/http/client.cpp.o"
  "CMakeFiles/dm_http.dir/dockmine/http/client.cpp.o.d"
  "CMakeFiles/dm_http.dir/dockmine/http/message.cpp.o"
  "CMakeFiles/dm_http.dir/dockmine/http/message.cpp.o.d"
  "CMakeFiles/dm_http.dir/dockmine/http/server.cpp.o"
  "CMakeFiles/dm_http.dir/dockmine/http/server.cpp.o.d"
  "CMakeFiles/dm_http.dir/dockmine/http/socket.cpp.o"
  "CMakeFiles/dm_http.dir/dockmine/http/socket.cpp.o.d"
  "libdm_http.a"
  "libdm_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
