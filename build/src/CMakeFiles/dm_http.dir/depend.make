# Empty dependencies file for dm_http.
# This may be replaced when dependencies are built.
