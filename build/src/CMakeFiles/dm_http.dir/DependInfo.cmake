
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dockmine/http/client.cpp" "src/CMakeFiles/dm_http.dir/dockmine/http/client.cpp.o" "gcc" "src/CMakeFiles/dm_http.dir/dockmine/http/client.cpp.o.d"
  "/root/repo/src/dockmine/http/message.cpp" "src/CMakeFiles/dm_http.dir/dockmine/http/message.cpp.o" "gcc" "src/CMakeFiles/dm_http.dir/dockmine/http/message.cpp.o.d"
  "/root/repo/src/dockmine/http/server.cpp" "src/CMakeFiles/dm_http.dir/dockmine/http/server.cpp.o" "gcc" "src/CMakeFiles/dm_http.dir/dockmine/http/server.cpp.o.d"
  "/root/repo/src/dockmine/http/socket.cpp" "src/CMakeFiles/dm_http.dir/dockmine/http/socket.cpp.o" "gcc" "src/CMakeFiles/dm_http.dir/dockmine/http/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
