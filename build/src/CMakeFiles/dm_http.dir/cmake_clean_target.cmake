file(REMOVE_RECURSE
  "libdm_http.a"
)
