
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dockmine/stats/cdf.cpp" "src/CMakeFiles/dm_stats.dir/dockmine/stats/cdf.cpp.o" "gcc" "src/CMakeFiles/dm_stats.dir/dockmine/stats/cdf.cpp.o.d"
  "/root/repo/src/dockmine/stats/distributions.cpp" "src/CMakeFiles/dm_stats.dir/dockmine/stats/distributions.cpp.o" "gcc" "src/CMakeFiles/dm_stats.dir/dockmine/stats/distributions.cpp.o.d"
  "/root/repo/src/dockmine/stats/histogram.cpp" "src/CMakeFiles/dm_stats.dir/dockmine/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/dm_stats.dir/dockmine/stats/histogram.cpp.o.d"
  "/root/repo/src/dockmine/stats/sampling.cpp" "src/CMakeFiles/dm_stats.dir/dockmine/stats/sampling.cpp.o" "gcc" "src/CMakeFiles/dm_stats.dir/dockmine/stats/sampling.cpp.o.d"
  "/root/repo/src/dockmine/stats/summary.cpp" "src/CMakeFiles/dm_stats.dir/dockmine/stats/summary.cpp.o" "gcc" "src/CMakeFiles/dm_stats.dir/dockmine/stats/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
