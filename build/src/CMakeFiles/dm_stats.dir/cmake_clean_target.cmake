file(REMOVE_RECURSE
  "libdm_stats.a"
)
