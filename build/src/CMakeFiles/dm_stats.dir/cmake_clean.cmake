file(REMOVE_RECURSE
  "CMakeFiles/dm_stats.dir/dockmine/stats/cdf.cpp.o"
  "CMakeFiles/dm_stats.dir/dockmine/stats/cdf.cpp.o.d"
  "CMakeFiles/dm_stats.dir/dockmine/stats/distributions.cpp.o"
  "CMakeFiles/dm_stats.dir/dockmine/stats/distributions.cpp.o.d"
  "CMakeFiles/dm_stats.dir/dockmine/stats/histogram.cpp.o"
  "CMakeFiles/dm_stats.dir/dockmine/stats/histogram.cpp.o.d"
  "CMakeFiles/dm_stats.dir/dockmine/stats/sampling.cpp.o"
  "CMakeFiles/dm_stats.dir/dockmine/stats/sampling.cpp.o.d"
  "CMakeFiles/dm_stats.dir/dockmine/stats/summary.cpp.o"
  "CMakeFiles/dm_stats.dir/dockmine/stats/summary.cpp.o.d"
  "libdm_stats.a"
  "libdm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
