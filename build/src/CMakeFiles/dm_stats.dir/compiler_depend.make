# Empty compiler generated dependencies file for dm_stats.
# This may be replaced when dependencies are built.
