file(REMOVE_RECURSE
  "libdm_json.a"
)
