# Empty compiler generated dependencies file for dm_json.
# This may be replaced when dependencies are built.
