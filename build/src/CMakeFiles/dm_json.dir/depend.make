# Empty dependencies file for dm_json.
# This may be replaced when dependencies are built.
