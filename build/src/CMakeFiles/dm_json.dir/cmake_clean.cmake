file(REMOVE_RECURSE
  "CMakeFiles/dm_json.dir/dockmine/json/json.cpp.o"
  "CMakeFiles/dm_json.dir/dockmine/json/json.cpp.o.d"
  "libdm_json.a"
  "libdm_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
