file(REMOVE_RECURSE
  "CMakeFiles/dm_core.dir/dockmine/core/cache_sim.cpp.o"
  "CMakeFiles/dm_core.dir/dockmine/core/cache_sim.cpp.o.d"
  "CMakeFiles/dm_core.dir/dockmine/core/dataset.cpp.o"
  "CMakeFiles/dm_core.dir/dockmine/core/dataset.cpp.o.d"
  "CMakeFiles/dm_core.dir/dockmine/core/pipeline.cpp.o"
  "CMakeFiles/dm_core.dir/dockmine/core/pipeline.cpp.o.d"
  "CMakeFiles/dm_core.dir/dockmine/core/report.cpp.o"
  "CMakeFiles/dm_core.dir/dockmine/core/report.cpp.o.d"
  "CMakeFiles/dm_core.dir/dockmine/core/trace.cpp.o"
  "CMakeFiles/dm_core.dir/dockmine/core/trace.cpp.o.d"
  "libdm_core.a"
  "libdm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
