file(REMOVE_RECURSE
  "CMakeFiles/dm_registry.dir/dockmine/registry/gc.cpp.o"
  "CMakeFiles/dm_registry.dir/dockmine/registry/gc.cpp.o.d"
  "CMakeFiles/dm_registry.dir/dockmine/registry/http_gateway.cpp.o"
  "CMakeFiles/dm_registry.dir/dockmine/registry/http_gateway.cpp.o.d"
  "CMakeFiles/dm_registry.dir/dockmine/registry/manifest.cpp.o"
  "CMakeFiles/dm_registry.dir/dockmine/registry/manifest.cpp.o.d"
  "CMakeFiles/dm_registry.dir/dockmine/registry/model.cpp.o"
  "CMakeFiles/dm_registry.dir/dockmine/registry/model.cpp.o.d"
  "CMakeFiles/dm_registry.dir/dockmine/registry/search.cpp.o"
  "CMakeFiles/dm_registry.dir/dockmine/registry/search.cpp.o.d"
  "CMakeFiles/dm_registry.dir/dockmine/registry/service.cpp.o"
  "CMakeFiles/dm_registry.dir/dockmine/registry/service.cpp.o.d"
  "libdm_registry.a"
  "libdm_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
