# Empty compiler generated dependencies file for dm_registry.
# This may be replaced when dependencies are built.
