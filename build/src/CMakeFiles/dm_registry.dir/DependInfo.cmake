
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dockmine/registry/gc.cpp" "src/CMakeFiles/dm_registry.dir/dockmine/registry/gc.cpp.o" "gcc" "src/CMakeFiles/dm_registry.dir/dockmine/registry/gc.cpp.o.d"
  "/root/repo/src/dockmine/registry/http_gateway.cpp" "src/CMakeFiles/dm_registry.dir/dockmine/registry/http_gateway.cpp.o" "gcc" "src/CMakeFiles/dm_registry.dir/dockmine/registry/http_gateway.cpp.o.d"
  "/root/repo/src/dockmine/registry/manifest.cpp" "src/CMakeFiles/dm_registry.dir/dockmine/registry/manifest.cpp.o" "gcc" "src/CMakeFiles/dm_registry.dir/dockmine/registry/manifest.cpp.o.d"
  "/root/repo/src/dockmine/registry/model.cpp" "src/CMakeFiles/dm_registry.dir/dockmine/registry/model.cpp.o" "gcc" "src/CMakeFiles/dm_registry.dir/dockmine/registry/model.cpp.o.d"
  "/root/repo/src/dockmine/registry/search.cpp" "src/CMakeFiles/dm_registry.dir/dockmine/registry/search.cpp.o" "gcc" "src/CMakeFiles/dm_registry.dir/dockmine/registry/search.cpp.o.d"
  "/root/repo/src/dockmine/registry/service.cpp" "src/CMakeFiles/dm_registry.dir/dockmine/registry/service.cpp.o" "gcc" "src/CMakeFiles/dm_registry.dir/dockmine/registry/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_digest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
