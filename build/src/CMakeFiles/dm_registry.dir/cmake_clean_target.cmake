file(REMOVE_RECURSE
  "libdm_registry.a"
)
