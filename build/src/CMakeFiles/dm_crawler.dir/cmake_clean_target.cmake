file(REMOVE_RECURSE
  "libdm_crawler.a"
)
