file(REMOVE_RECURSE
  "CMakeFiles/dm_crawler.dir/dockmine/crawler/crawler.cpp.o"
  "CMakeFiles/dm_crawler.dir/dockmine/crawler/crawler.cpp.o.d"
  "libdm_crawler.a"
  "libdm_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
