# Empty compiler generated dependencies file for dm_crawler.
# This may be replaced when dependencies are built.
