
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dockmine/synth/calibration.cpp" "src/CMakeFiles/dm_synth.dir/dockmine/synth/calibration.cpp.o" "gcc" "src/CMakeFiles/dm_synth.dir/dockmine/synth/calibration.cpp.o.d"
  "/root/repo/src/dockmine/synth/file_model.cpp" "src/CMakeFiles/dm_synth.dir/dockmine/synth/file_model.cpp.o" "gcc" "src/CMakeFiles/dm_synth.dir/dockmine/synth/file_model.cpp.o.d"
  "/root/repo/src/dockmine/synth/generator.cpp" "src/CMakeFiles/dm_synth.dir/dockmine/synth/generator.cpp.o" "gcc" "src/CMakeFiles/dm_synth.dir/dockmine/synth/generator.cpp.o.d"
  "/root/repo/src/dockmine/synth/layer_model.cpp" "src/CMakeFiles/dm_synth.dir/dockmine/synth/layer_model.cpp.o" "gcc" "src/CMakeFiles/dm_synth.dir/dockmine/synth/layer_model.cpp.o.d"
  "/root/repo/src/dockmine/synth/lineage.cpp" "src/CMakeFiles/dm_synth.dir/dockmine/synth/lineage.cpp.o" "gcc" "src/CMakeFiles/dm_synth.dir/dockmine/synth/lineage.cpp.o.d"
  "/root/repo/src/dockmine/synth/materialize.cpp" "src/CMakeFiles/dm_synth.dir/dockmine/synth/materialize.cpp.o" "gcc" "src/CMakeFiles/dm_synth.dir/dockmine/synth/materialize.cpp.o.d"
  "/root/repo/src/dockmine/synth/popularity.cpp" "src/CMakeFiles/dm_synth.dir/dockmine/synth/popularity.cpp.o" "gcc" "src/CMakeFiles/dm_synth.dir/dockmine/synth/popularity.cpp.o.d"
  "/root/repo/src/dockmine/synth/versions.cpp" "src/CMakeFiles/dm_synth.dir/dockmine/synth/versions.cpp.o" "gcc" "src/CMakeFiles/dm_synth.dir/dockmine/synth/versions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_digest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_tar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_filetype.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dm_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
