file(REMOVE_RECURSE
  "CMakeFiles/dm_synth.dir/dockmine/synth/calibration.cpp.o"
  "CMakeFiles/dm_synth.dir/dockmine/synth/calibration.cpp.o.d"
  "CMakeFiles/dm_synth.dir/dockmine/synth/file_model.cpp.o"
  "CMakeFiles/dm_synth.dir/dockmine/synth/file_model.cpp.o.d"
  "CMakeFiles/dm_synth.dir/dockmine/synth/generator.cpp.o"
  "CMakeFiles/dm_synth.dir/dockmine/synth/generator.cpp.o.d"
  "CMakeFiles/dm_synth.dir/dockmine/synth/layer_model.cpp.o"
  "CMakeFiles/dm_synth.dir/dockmine/synth/layer_model.cpp.o.d"
  "CMakeFiles/dm_synth.dir/dockmine/synth/lineage.cpp.o"
  "CMakeFiles/dm_synth.dir/dockmine/synth/lineage.cpp.o.d"
  "CMakeFiles/dm_synth.dir/dockmine/synth/materialize.cpp.o"
  "CMakeFiles/dm_synth.dir/dockmine/synth/materialize.cpp.o.d"
  "CMakeFiles/dm_synth.dir/dockmine/synth/popularity.cpp.o"
  "CMakeFiles/dm_synth.dir/dockmine/synth/popularity.cpp.o.d"
  "CMakeFiles/dm_synth.dir/dockmine/synth/versions.cpp.o"
  "CMakeFiles/dm_synth.dir/dockmine/synth/versions.cpp.o.d"
  "libdm_synth.a"
  "libdm_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
