file(REMOVE_RECURSE
  "libdm_synth.a"
)
