# Empty dependencies file for dm_filetype.
# This may be replaced when dependencies are built.
