file(REMOVE_RECURSE
  "libdm_filetype.a"
)
