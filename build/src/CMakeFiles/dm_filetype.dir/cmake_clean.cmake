file(REMOVE_RECURSE
  "CMakeFiles/dm_filetype.dir/dockmine/filetype/classifier.cpp.o"
  "CMakeFiles/dm_filetype.dir/dockmine/filetype/classifier.cpp.o.d"
  "CMakeFiles/dm_filetype.dir/dockmine/filetype/taxonomy.cpp.o"
  "CMakeFiles/dm_filetype.dir/dockmine/filetype/taxonomy.cpp.o.d"
  "libdm_filetype.a"
  "libdm_filetype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_filetype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
