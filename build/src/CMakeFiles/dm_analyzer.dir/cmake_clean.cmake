file(REMOVE_RECURSE
  "CMakeFiles/dm_analyzer.dir/dockmine/analyzer/image_analyzer.cpp.o"
  "CMakeFiles/dm_analyzer.dir/dockmine/analyzer/image_analyzer.cpp.o.d"
  "CMakeFiles/dm_analyzer.dir/dockmine/analyzer/layer_analyzer.cpp.o"
  "CMakeFiles/dm_analyzer.dir/dockmine/analyzer/layer_analyzer.cpp.o.d"
  "CMakeFiles/dm_analyzer.dir/dockmine/analyzer/pipeline.cpp.o"
  "CMakeFiles/dm_analyzer.dir/dockmine/analyzer/pipeline.cpp.o.d"
  "CMakeFiles/dm_analyzer.dir/dockmine/analyzer/profile.cpp.o"
  "CMakeFiles/dm_analyzer.dir/dockmine/analyzer/profile.cpp.o.d"
  "libdm_analyzer.a"
  "libdm_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
