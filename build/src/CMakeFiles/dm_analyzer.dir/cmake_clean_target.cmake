file(REMOVE_RECURSE
  "libdm_analyzer.a"
)
