# Empty compiler generated dependencies file for dm_analyzer.
# This may be replaced when dependencies are built.
