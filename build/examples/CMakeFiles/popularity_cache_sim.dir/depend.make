# Empty dependencies file for popularity_cache_sim.
# This may be replaced when dependencies are built.
