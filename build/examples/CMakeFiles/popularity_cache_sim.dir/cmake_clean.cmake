file(REMOVE_RECURSE
  "CMakeFiles/popularity_cache_sim.dir/popularity_cache_sim.cpp.o"
  "CMakeFiles/popularity_cache_sim.dir/popularity_cache_sim.cpp.o.d"
  "popularity_cache_sim"
  "popularity_cache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popularity_cache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
