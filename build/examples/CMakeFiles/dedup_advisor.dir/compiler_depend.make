# Empty compiler generated dependencies file for dedup_advisor.
# This may be replaced when dependencies are built.
