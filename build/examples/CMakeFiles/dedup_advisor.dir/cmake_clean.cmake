file(REMOVE_RECURSE
  "CMakeFiles/dedup_advisor.dir/dedup_advisor.cpp.o"
  "CMakeFiles/dedup_advisor.dir/dedup_advisor.cpp.o.d"
  "dedup_advisor"
  "dedup_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
