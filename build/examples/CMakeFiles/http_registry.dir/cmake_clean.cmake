file(REMOVE_RECURSE
  "CMakeFiles/http_registry.dir/http_registry.cpp.o"
  "CMakeFiles/http_registry.dir/http_registry.cpp.o.d"
  "http_registry"
  "http_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
