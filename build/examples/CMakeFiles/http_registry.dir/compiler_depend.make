# Empty compiler generated dependencies file for http_registry.
# This may be replaced when dependencies are built.
