# Empty dependencies file for registry_mirror.
# This may be replaced when dependencies are built.
