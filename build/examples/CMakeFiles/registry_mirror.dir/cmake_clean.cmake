file(REMOVE_RECURSE
  "CMakeFiles/registry_mirror.dir/registry_mirror.cpp.o"
  "CMakeFiles/registry_mirror.dir/registry_mirror.cpp.o.d"
  "registry_mirror"
  "registry_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registry_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
