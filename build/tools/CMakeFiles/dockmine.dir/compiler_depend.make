# Empty compiler generated dependencies file for dockmine.
# This may be replaced when dependencies are built.
