file(REMOVE_RECURSE
  "CMakeFiles/dockmine.dir/dockmine_cli.cpp.o"
  "CMakeFiles/dockmine.dir/dockmine_cli.cpp.o.d"
  "dockmine"
  "dockmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dockmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
