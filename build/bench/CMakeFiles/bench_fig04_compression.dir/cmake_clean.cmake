file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_compression.dir/bench_fig04_compression.cpp.o"
  "CMakeFiles/bench_fig04_compression.dir/bench_fig04_compression.cpp.o.d"
  "bench_fig04_compression"
  "bench_fig04_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
