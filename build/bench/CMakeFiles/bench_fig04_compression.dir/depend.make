# Empty dependencies file for bench_fig04_compression.
# This may be replaced when dependencies are built.
