# Empty dependencies file for bench_fig06_dir_counts.
# This may be replaced when dependencies are built.
