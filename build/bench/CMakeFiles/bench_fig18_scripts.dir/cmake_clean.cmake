file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_scripts.dir/bench_fig18_scripts.cpp.o"
  "CMakeFiles/bench_fig18_scripts.dir/bench_fig18_scripts.cpp.o.d"
  "bench_fig18_scripts"
  "bench_fig18_scripts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_scripts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
