# Empty dependencies file for bench_fig21_databases.
# This may be replaced when dependencies are built.
