file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_databases.dir/bench_fig21_databases.cpp.o"
  "CMakeFiles/bench_fig21_databases.dir/bench_fig21_databases.cpp.o.d"
  "bench_fig21_databases"
  "bench_fig21_databases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_databases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
