# Empty dependencies file for bench_fig25_dedup_growth.
# This may be replaced when dependencies are built.
