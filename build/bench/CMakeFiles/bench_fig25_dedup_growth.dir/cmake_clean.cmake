file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_dedup_growth.dir/bench_fig25_dedup_growth.cpp.o"
  "CMakeFiles/bench_fig25_dedup_growth.dir/bench_fig25_dedup_growth.cpp.o.d"
  "bench_fig25_dedup_growth"
  "bench_fig25_dedup_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_dedup_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
