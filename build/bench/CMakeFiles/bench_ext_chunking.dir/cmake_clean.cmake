file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_chunking.dir/bench_ext_chunking.cpp.o"
  "CMakeFiles/bench_ext_chunking.dir/bench_ext_chunking.cpp.o.d"
  "bench_ext_chunking"
  "bench_ext_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
