# Empty compiler generated dependencies file for bench_fig08_popularity.
# This may be replaced when dependencies are built.
