file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_popularity.dir/bench_fig08_popularity.cpp.o"
  "CMakeFiles/bench_fig08_popularity.dir/bench_fig08_popularity.cpp.o.d"
  "bench_fig08_popularity"
  "bench_fig08_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
