file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_documents.dir/bench_fig19_documents.cpp.o"
  "CMakeFiles/bench_fig19_documents.dir/bench_fig19_documents.cpp.o.d"
  "bench_fig19_documents"
  "bench_fig19_documents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_documents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
