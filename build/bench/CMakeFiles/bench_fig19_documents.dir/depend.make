# Empty dependencies file for bench_fig19_documents.
# This may be replaced when dependencies are built.
