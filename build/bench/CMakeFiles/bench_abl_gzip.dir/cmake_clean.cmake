file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_gzip.dir/bench_abl_gzip.cpp.o"
  "CMakeFiles/bench_abl_gzip.dir/bench_abl_gzip.cpp.o.d"
  "bench_abl_gzip"
  "bench_abl_gzip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_gzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
