# Empty compiler generated dependencies file for bench_abl_gzip.
# This may be replaced when dependencies are built.
