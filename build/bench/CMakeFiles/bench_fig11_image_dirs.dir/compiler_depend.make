# Empty compiler generated dependencies file for bench_fig11_image_dirs.
# This may be replaced when dependencies are built.
