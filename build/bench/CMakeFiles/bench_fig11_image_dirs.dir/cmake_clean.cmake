file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_image_dirs.dir/bench_fig11_image_dirs.cpp.o"
  "CMakeFiles/bench_fig11_image_dirs.dir/bench_fig11_image_dirs.cpp.o.d"
  "bench_fig11_image_dirs"
  "bench_fig11_image_dirs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_image_dirs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
