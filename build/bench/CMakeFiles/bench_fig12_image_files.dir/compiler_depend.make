# Empty compiler generated dependencies file for bench_fig12_image_files.
# This may be replaced when dependencies are built.
