# Empty compiler generated dependencies file for bench_fig26_cross_dup.
# This may be replaced when dependencies are built.
