file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_cross_dup.dir/bench_fig26_cross_dup.cpp.o"
  "CMakeFiles/bench_fig26_cross_dup.dir/bench_fig26_cross_dup.cpp.o.d"
  "bench_fig26_cross_dup"
  "bench_fig26_cross_dup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_cross_dup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
