# Empty dependencies file for bench_fig17_source.
# This may be replaced when dependencies are built.
