# Empty dependencies file for bench_abl_downloader.
# This may be replaced when dependencies are built.
