file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_downloader.dir/bench_abl_downloader.cpp.o"
  "CMakeFiles/bench_abl_downloader.dir/bench_abl_downloader.cpp.o.d"
  "bench_abl_downloader"
  "bench_abl_downloader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_downloader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
