# Empty compiler generated dependencies file for bench_fig23_layer_sharing.
# This may be replaced when dependencies are built.
