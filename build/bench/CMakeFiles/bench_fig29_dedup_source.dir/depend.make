# Empty dependencies file for bench_fig29_dedup_source.
# This may be replaced when dependencies are built.
