file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_dedup_source.dir/bench_fig29_dedup_source.cpp.o"
  "CMakeFiles/bench_fig29_dedup_source.dir/bench_fig29_dedup_source.cpp.o.d"
  "bench_fig29_dedup_source"
  "bench_fig29_dedup_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_dedup_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
