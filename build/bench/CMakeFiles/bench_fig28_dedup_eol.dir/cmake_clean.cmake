file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_dedup_eol.dir/bench_fig28_dedup_eol.cpp.o"
  "CMakeFiles/bench_fig28_dedup_eol.dir/bench_fig28_dedup_eol.cpp.o.d"
  "bench_fig28_dedup_eol"
  "bench_fig28_dedup_eol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_dedup_eol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
