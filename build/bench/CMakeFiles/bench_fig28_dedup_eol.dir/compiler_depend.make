# Empty compiler generated dependencies file for bench_fig28_dedup_eol.
# This may be replaced when dependencies are built.
