file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cache.dir/bench_abl_cache.cpp.o"
  "CMakeFiles/bench_abl_cache.dir/bench_abl_cache.cpp.o.d"
  "bench_abl_cache"
  "bench_abl_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
