# Empty dependencies file for bench_fig14_type_groups.
# This may be replaced when dependencies are built.
