file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_http.dir/bench_abl_http.cpp.o"
  "CMakeFiles/bench_abl_http.dir/bench_abl_http.cpp.o.d"
  "bench_abl_http"
  "bench_abl_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
