# Empty compiler generated dependencies file for bench_abl_http.
# This may be replaced when dependencies are built.
