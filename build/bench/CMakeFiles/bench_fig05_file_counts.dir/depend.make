# Empty dependencies file for bench_fig05_file_counts.
# This may be replaced when dependencies are built.
