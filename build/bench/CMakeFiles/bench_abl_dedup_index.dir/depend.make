# Empty dependencies file for bench_abl_dedup_index.
# This may be replaced when dependencies are built.
