file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dedup_index.dir/bench_abl_dedup_index.cpp.o"
  "CMakeFiles/bench_abl_dedup_index.dir/bench_abl_dedup_index.cpp.o.d"
  "bench_abl_dedup_index"
  "bench_abl_dedup_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dedup_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
