# Empty dependencies file for bench_abl_store_uncompressed.
# This may be replaced when dependencies are built.
