file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_store_uncompressed.dir/bench_abl_store_uncompressed.cpp.o"
  "CMakeFiles/bench_abl_store_uncompressed.dir/bench_abl_store_uncompressed.cpp.o.d"
  "bench_abl_store_uncompressed"
  "bench_abl_store_uncompressed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_store_uncompressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
