file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_archival.dir/bench_fig20_archival.cpp.o"
  "CMakeFiles/bench_fig20_archival.dir/bench_fig20_archival.cpp.o.d"
  "bench_fig20_archival"
  "bench_fig20_archival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_archival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
