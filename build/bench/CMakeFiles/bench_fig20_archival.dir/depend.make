# Empty dependencies file for bench_fig20_archival.
# This may be replaced when dependencies are built.
