# Empty compiler generated dependencies file for bench_fig27_dedup_groups.
# This may be replaced when dependencies are built.
