file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multitag.dir/bench_ext_multitag.cpp.o"
  "CMakeFiles/bench_ext_multitag.dir/bench_ext_multitag.cpp.o.d"
  "bench_ext_multitag"
  "bench_ext_multitag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multitag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
