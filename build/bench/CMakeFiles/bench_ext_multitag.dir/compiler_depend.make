# Empty compiler generated dependencies file for bench_ext_multitag.
# This may be replaced when dependencies are built.
