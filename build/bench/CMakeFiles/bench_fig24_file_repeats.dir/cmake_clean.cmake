file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_file_repeats.dir/bench_fig24_file_repeats.cpp.o"
  "CMakeFiles/bench_fig24_file_repeats.dir/bench_fig24_file_repeats.cpp.o.d"
  "bench_fig24_file_repeats"
  "bench_fig24_file_repeats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_file_repeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
