# Empty compiler generated dependencies file for bench_fig24_file_repeats.
# This may be replaced when dependencies are built.
