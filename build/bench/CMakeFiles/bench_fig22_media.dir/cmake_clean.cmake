file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_media.dir/bench_fig22_media.cpp.o"
  "CMakeFiles/bench_fig22_media.dir/bench_fig22_media.cpp.o.d"
  "bench_fig22_media"
  "bench_fig22_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
