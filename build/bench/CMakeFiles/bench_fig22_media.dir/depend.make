# Empty dependencies file for bench_fig22_media.
# This may be replaced when dependencies are built.
