# Empty dependencies file for bench_fig16_eol.
# This may be replaced when dependencies are built.
