file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_eol.dir/bench_fig16_eol.cpp.o"
  "CMakeFiles/bench_fig16_eol.dir/bench_fig16_eol.cpp.o.d"
  "bench_fig16_eol"
  "bench_fig16_eol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_eol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
