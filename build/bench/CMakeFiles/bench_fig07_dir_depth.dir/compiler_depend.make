# Empty compiler generated dependencies file for bench_fig07_dir_depth.
# This may be replaced when dependencies are built.
