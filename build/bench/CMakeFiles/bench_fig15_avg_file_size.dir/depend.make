# Empty dependencies file for bench_fig15_avg_file_size.
# This may be replaced when dependencies are built.
